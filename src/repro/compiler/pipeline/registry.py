"""Registry of basis-gate selection strategies.

Strategies used to be magic strings dispatched in three different places
(``core.basis_selection``, ``compiler.basis_translation`` and
``device.device``).  The registry centralises everything a compilation needs
to know about a strategy:

* a factory producing the :class:`~repro.core.basis_selection.SelectionStrategy`
  that picks a gate from a Cartan trajectory;
* which drive amplitude the case-study device uses for it (baseline vs
  nonstandard);
* which two-qubit gates the translation pass decomposes directly (the
  baseline's analytic targets vs the minimalist SWAP/CNOT set).

New strategies plug in with the :func:`register_strategy` decorator::

    from repro.compiler.pipeline import register_strategy
    from repro.core.basis_selection import SelectionStrategy

    @register_strategy("my_strategy")
    class MyStrategy(SelectionStrategy):
        name = "my_strategy"

        def predicate(self, coords):
            ...

after which ``transpile(circuit, device, strategy="my_strategy")`` just works.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.compiler.basis_translation import (
    BASELINE_DIRECT_TARGETS,
    MINIMALIST_DIRECT_TARGETS,
)
from repro.core.basis_selection import (
    BaselineSqrtIswapStrategy,
    Criterion1Strategy,
    Criterion2Strategy,
    PredicateStrategy,
    SelectionStrategy,
)
from repro.synthesis.depth import can_synthesize_swap_in_3_layers
from repro.weyl.entangling_power import is_perfect_entangler


@dataclass(frozen=True)
class StrategySpec:
    """Everything the pipeline knows about one named strategy.

    Attributes:
        name: the public name used in ``transpile(..., strategy=name)``.
        factory: zero-argument callable building the selection strategy.
        uses_baseline_amplitude: drive the pair at the baseline (weak)
            amplitude instead of the nonstandard (strong) one.
        direct_targets: two-qubit gate names the translation pass decomposes
            directly into the basis gate (everything else lowers to CNOT).
    """

    name: str
    factory: Callable[[], SelectionStrategy]
    uses_baseline_amplitude: bool = False
    direct_targets: frozenset[str] = MINIMALIST_DIRECT_TARGETS

    def build(self) -> SelectionStrategy:
        """Instantiate the selection strategy."""
        return self.factory()


class StrategyRegistry:
    """A mapping from strategy names to :class:`StrategySpec` entries."""

    def __init__(self) -> None:
        self._specs: dict[str, StrategySpec] = {}
        self._generations: dict[str, int] = {}

    # -- registration ---------------------------------------------------------

    def register(self, spec: StrategySpec, *, overwrite: bool = False) -> StrategySpec:
        """Add a spec to the registry.

        Replacing a name (``overwrite=True``) bumps its generation, which
        invalidates every cached selection/target computed under the old
        definition.

        Raises:
            ValueError: when the name is already taken and ``overwrite`` is
                not set (silent shadowing of e.g. ``"criterion2"`` would make
                results impossible to interpret).
        """
        if spec.name in self._specs and not overwrite:
            raise ValueError(
                f"strategy {spec.name!r} is already registered; pass overwrite=True "
                "to replace it"
            )
        if spec.name in self._specs:
            self._generations[spec.name] = self._generations.get(spec.name, 0) + 1
        self._specs[spec.name] = spec
        return spec

    def unregister(self, name: str) -> None:
        """Remove a strategy (mainly for tests and notebooks)."""
        if self._specs.pop(name, None) is not None:
            self._generations[name] = self._generations.get(name, 0) + 1

    def generation(self, name: str) -> int:
        """Monotonic counter bumped whenever ``name``'s definition changes.

        Caches keyed on a strategy name include this so that re-registering a
        strategy never silently serves results computed under its previous
        definition.
        """
        return self._generations.get(name, 0)

    # -- lookup ---------------------------------------------------------------

    def spec(self, name: str) -> StrategySpec:
        """The spec registered under ``name`` (validates the name)."""
        self.validate(name)
        return self._specs[name]

    def get(self, name: str) -> SelectionStrategy:
        """Build the selection strategy registered under ``name``."""
        return self.spec(name).build()

    def names(self) -> tuple[str, ...]:
        """Registered strategy names, in registration order."""
        return tuple(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[str]:
        return iter(self._specs)

    def validate(self, name: str) -> str:
        """Raise early, with the registered names, for an unknown strategy."""
        if name not in self._specs:
            raise ValueError(
                f"unknown strategy {name!r}; registered strategies: "
                f"{sorted(self._specs)}"
            )
        return name


#: The process-wide registry used by the compilation pipeline.
REGISTRY = StrategyRegistry()


def register_strategy(
    name: str,
    *,
    uses_baseline_amplitude: bool = False,
    direct_targets: frozenset[str] | None = None,
    overwrite: bool = False,
):
    """Decorator registering a strategy class or factory under ``name``.

    Works on :class:`SelectionStrategy` subclasses and on zero-argument
    factories returning an instance; returns the decorated object unchanged.
    A registered name works everywhere strategies are named -- ``transpile``,
    ``transpile_batch``, ``Device.basis_gate``, fleet specs, service
    requests.

    Example::

        @register_strategy("pe_swap3")
        class PerfectEntanglerSwap3(SelectionStrategy):
            name = "pe_swap3"

            def predicate(self, coords):
                return is_perfect_entangler(coords)

        transpile(circuit, device, strategy="pe_swap3")
    """

    def decorator(factory: Callable[[], SelectionStrategy]):
        REGISTRY.register(
            StrategySpec(
                name=name,
                factory=factory,
                uses_baseline_amplitude=uses_baseline_amplitude,
                direct_targets=(
                    MINIMALIST_DIRECT_TARGETS if direct_targets is None else direct_targets
                ),
            ),
            overwrite=overwrite,
        )
        return factory

    return decorator


def get_strategy(name: str) -> SelectionStrategy:
    """Build the selection strategy registered under ``name``."""
    return REGISTRY.get(name)


def get_strategy_spec(name: str) -> StrategySpec:
    """The :class:`StrategySpec` registered under ``name``."""
    return REGISTRY.spec(name)


def available_strategy_names() -> tuple[str, ...]:
    """Names currently accepted anywhere a strategy string is expected."""
    return REGISTRY.names()


def validate_strategy(name: str) -> str:
    """Raise ``ValueError`` (listing registered names) for unknown strategies."""
    return REGISTRY.validate(name)


# -- built-in strategies ------------------------------------------------------

REGISTRY.register(
    StrategySpec(
        name="baseline",
        factory=BaselineSqrtIswapStrategy,
        uses_baseline_amplitude=True,
        direct_targets=BASELINE_DIRECT_TARGETS,
    )
)
REGISTRY.register(StrategySpec(name="criterion1", factory=Criterion1Strategy))
REGISTRY.register(StrategySpec(name="criterion2", factory=Criterion2Strategy))
REGISTRY.register(
    StrategySpec(
        name="pe_and_swap3",
        factory=lambda: PredicateStrategy(
            "pe_and_swap3",
            lambda c: is_perfect_entangler(c) and can_synthesize_swap_in_3_layers(c),
        ),
    )
)
