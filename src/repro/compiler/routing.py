"""SABRE-style heuristic routing (Li, Ding, Xie -- ASPLOS 2019).

Given a circuit over *logical* qubits and an initial layout onto the device's
physical qubits, insert SWAP gates so that every two-qubit gate acts on
physically coupled qubits.  The router keeps a *front layer* of gates whose
per-qubit predecessors have all been executed; when no front gate is
executable it inserts the SWAP that minimises a distance heuristic with a
look-ahead term over the next few pending gates and a decay factor that
discourages ping-ponging the same qubits.  Per SABRE, the extended
(look-ahead) set contains only successors *beyond* the front layer -- front
gates already carry full weight in the front term and must not be counted
twice.

The high SWAP count this pass produces on sparse lattices is exactly why the
paper prioritises SWAP synthesis when choosing basis gates.

Two execution engines produce byte-identical results:

* the **vectorized engine** (default) keeps the logical<->physical mapping as
  numpy int arrays, maintains the front layer / dependency state
  incrementally (a min-heap of ready gates plus a linked list over pending
  two-qubit gates) and scores all candidate SWAPs at once with batch lookups
  into the metric's dense distance matrix;
* the **reference engine** (``vectorized=False``, or any metric without a
  dense :meth:`~repro.compiler.cost.MappingMetric.distance_matrix`) is the
  original dict-based implementation: a full rescan of pending gates per
  iteration and one trial mapping copy per candidate SWAP.

The vectorized engine accumulates per-gate distances in the same order and
with the same float64 operation association as the reference's scalar
``sum()``, so scores -- and therefore SWAP choices, RNG draws and routed
circuits -- match the reference bit for bit (the mapping test suite asserts
gate-by-gate identity across topologies, seeds and metrics).
"""

from __future__ import annotations

import heapq
from bisect import insort
from dataclasses import dataclass, field

import numpy as np

from repro.circuits.circuit import Gate, QuantumCircuit
from repro.compiler.cost import HopCountMetric, MappingMetric


@dataclass
class RoutingResult:
    """Outcome of routing a circuit onto the device."""

    circuit: QuantumCircuit
    initial_layout: dict[int, int]
    final_layout: dict[int, int]
    swap_count: int


@dataclass
class SabreRouter:
    """A SABRE-style router over an arbitrary coupling graph.

    Args:
        device: object exposing ``n_qubits``, ``has_edge(a, b)``,
            ``neighbors(q)`` and ``distance(a, b)`` (e.g.
            :class:`repro.device.device.Device`).
        lookahead_size: number of not-yet-routable two-qubit gates included in
            the extended (look-ahead) set.
        lookahead_weight: weight of the extended set in the heuristic.
        decay_increment: decay added to a qubit each time it is swapped.
        seed: tie-breaking randomness seed.
        metric: a :class:`~repro.compiler.cost.MappingMetric` supplying the
            distance heuristic and per-edge SWAP costs.  ``None`` (default)
            uses the legacy uniform hop-count metric, which is byte-identical
            to the pre-metric router.
        vectorized: route with the array-state engine when the metric exposes
            a dense distance matrix (the default).  ``False`` forces the
            scalar reference engine -- same output, used as the golden
            reference by tests and the speedup baseline by benchmarks.
    """

    device: object
    lookahead_size: int = 20
    lookahead_weight: float = 0.5
    decay_increment: float = 0.001
    seed: int = 17
    metric: object = None
    vectorized: bool = True
    _rng: np.random.Generator = field(init=False, repr=False)
    _device_arrays: dict | None = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)
        if self.metric is None:
            self.metric = HopCountMetric(self.device)

    def _device_state(self) -> dict:
        """Per-device adjacency state the vectorized engine reuses across runs.

        ``coupled[p]`` is a plain-list adjacency row (list indexing beats
        numpy scalar indexing in the gate-execution loop); ``cand_keys[p]``
        holds the candidate-SWAP keys (``min * n + max``) of every edge at
        ``p`` -- a sorted set-union of these reproduces ``sorted(set(...))``
        over the equivalent ``(a, b)`` tuples exactly.

        The state depends only on the coupling graph (immutable after device
        construction), so it is parked on the device object itself when
        possible -- every router over the same device then shares one copy
        instead of rebuilding it per router instance.
        """
        if self._device_arrays is None:
            cached = getattr(self.device, "_sabre_adjacency", None)
            if cached is not None:
                self._device_arrays = cached
                return cached
            n_phys = self.device.n_qubits
            coupled = [[False] * n_phys for _ in range(n_phys)]
            cand_keys = []
            for p in range(n_phys):
                neighbors = self.device.neighbors(p)
                for nb in neighbors:
                    coupled[p][nb] = True
                cand_keys.append(
                    [
                        (p * n_phys + nb) if p < nb else (nb * n_phys + p)
                        for nb in neighbors
                    ]
                )
            self._device_arrays = {"coupled": coupled, "cand_keys": cand_keys}
            try:
                self.device._sabre_adjacency = self._device_arrays
            except AttributeError:
                pass  # __slots__ or read-only device: keep the per-router copy
        return self._device_arrays

    # -- public API ---------------------------------------------------------

    def run(
        self, circuit: QuantumCircuit, initial_layout: dict[int, int]
    ) -> RoutingResult:
        """Route ``circuit`` starting from ``initial_layout``.

        The returned circuit acts on *physical* qubit indices and contains the
        original gates (re-indexed) plus inserted ``swap`` gates.
        """
        layout = dict(initial_layout)
        self._validate_layout(circuit, layout)
        if self.vectorized:
            dist, bias = self._resolve_matrices()
            if dist is not None:
                return self._run_vectorized(circuit, initial_layout, layout, dist, bias)
        return self._run_reference(circuit, initial_layout, layout)

    # -- engine selection ----------------------------------------------------

    def _resolve_matrices(self) -> tuple[np.ndarray | None, np.ndarray | None]:
        """The metric's dense distance / swap-bias matrices, when usable.

        Returns ``(None, None)`` -- falling back to the reference engine --
        when the metric exposes no matrix, when an integer hop matrix marks
        unreachable pairs (the reference raises through ``device.distance``
        and the vectorized path must not silently score ``-1``), or when a
        custom metric overrides ``swap_bias`` without supplying the matching
        dense matrix.
        """
        getter = getattr(self.metric, "distance_matrix", None)
        dist = getter() if callable(getter) else None
        if dist is None:
            return None, None
        dist = np.asarray(dist)
        if np.issubdtype(dist.dtype, np.integer) and (dist < 0).any():
            return None, None
        bias_getter = getattr(self.metric, "swap_bias_matrix", None)
        bias = bias_getter() if callable(bias_getter) else None
        overrides_bias = (
            type(self.metric).swap_bias is not MappingMetric.swap_bias
            if isinstance(self.metric, MappingMetric)
            else True
        )
        if bias is None and overrides_bias:
            return None, None
        return dist, None if bias is None else np.asarray(bias)

    # -- vectorized engine ---------------------------------------------------

    def _run_vectorized(
        self,
        circuit: QuantumCircuit,
        initial_layout: dict[int, int],
        layout: dict[int, int],
        dist: np.ndarray,
        bias: np.ndarray | None,
    ) -> RoutingResult:
        n_phys = self.device.n_qubits
        gates = list(circuit.gates)
        n = len(gates)
        state = self._device_state()
        coupled = state["coupled"]
        cand_keys = state["cand_keys"]

        # Logical<->physical mapping, twice: plain lists for the scalar
        # gate-execution loop (list indexing is fast), plus a numpy mirror
        # the scoring gathers index into.  Both update on every SWAP; -1
        # marks "no logical qubit here".  This replaces the reference
        # engine's dict + per-candidate inverse rebuild.
        phys_list = [-1] * ((max(layout) + 1) if layout else 0)
        log_on = [-1] * n_phys
        for logical, phys in layout.items():
            phys_list[logical] = phys
            log_on[phys] = logical

        # Endpoint lists for two-qubit gates; scoring assembles position
        # vectors for whole front/extended index lists from these.
        q0 = [0] * n
        q1 = [0] * n
        is_2q = [False] * n
        for i, gate in enumerate(gates):
            if gate.is_two_qubit:
                q0[i], q1[i] = gate.qubits
                is_2q[i] = True

        # Dependency state: a gate is ready when it heads every one of its
        # qubits' gate lists.  Successors always have a *higher* index than
        # the gate that unblocks them (per-qubit lists are in circuit order),
        # so a min-heap of ready gates pops in exactly the order the
        # reference engine's ascending rescan executes them.
        per_qubit: list[list[int]] = [[] for _ in range(circuit.n_qubits)]
        for i, gate in enumerate(gates):
            for q in gate.qubits:
                per_qubit[q].append(i)
        next_ptr = [0] * circuit.n_qubits
        indegree = [len(gate.qubits) for gate in gates]
        for order in per_qubit:
            if order:
                indegree[order[0]] -= 1
        ready = [i for i in range(n) if indegree[i] == 0]
        heapq.heapify(ready)

        # The front layer: ready two-qubit gates currently blocked on an
        # uncoupled pair, kept sorted by gate index (ascending = the order
        # the reference engine discovers them).
        front_blocked: list[int] = []
        in_front = [False] * n

        # Linked list over pending two-qubit gates in circuit order -- the
        # extended set is its first ``lookahead_size`` non-front entries.
        nxt = [-1] * n
        prv = [-1] * n
        head_2q = -1
        last = -1
        for i in range(n):
            if not is_2q[i]:
                continue
            if head_2q < 0:
                head_2q = i
            else:
                nxt[last] = i
                prv[i] = last
            last = i

        def unlink_2q(i: int) -> None:
            nonlocal head_2q
            before, after = prv[i], nxt[i]
            if before >= 0:
                nxt[before] = after
            else:
                head_2q = after
            if after >= 0:
                prv[after] = before

        routed = QuantumCircuit(n_phys, name=f"{circuit.name}_routed")
        # Hot path: gates are emitted straight onto the list.  Validation in
        # QuantumCircuit.append would be redundant -- positions come from a
        # validated layout permuted by SWAPs, so they stay in-range and
        # distinct by construction.
        emit = routed.gates.append
        executed_count = 0

        heappush = heapq.heappush
        heappop = heapq.heappop

        def drain() -> bool:
            """Execute every currently executable gate, cascading readiness."""
            nonlocal executed_count
            progressed = False
            while ready:
                i = heappop(ready)
                gate = gates[i]
                if is_2q[i]:
                    p0 = phys_list[q0[i]]
                    p1 = phys_list[q1[i]]
                    if not coupled[p0][p1]:
                        insort(front_blocked, i)
                        in_front[i] = True
                        continue
                    emit(Gate(gate.name, (p0, p1), gate.params))
                    unlink_2q(i)
                else:
                    emit(
                        Gate(
                            gate.name,
                            tuple(phys_list[q] for q in gate.qubits),
                            gate.params,
                        )
                    )
                executed_count += 1
                progressed = True
                for q in gate.qubits:
                    next_ptr[q] += 1
                    order = per_qubit[q]
                    if next_ptr[q] < len(order):
                        successor = order[next_ptr[q]]
                        indegree[successor] -= 1
                        if indegree[successor] == 0:
                            heappush(ready, successor)
            return progressed

        swap_count = 0
        decay = np.ones(n_phys)
        stall_guard = 0
        max_stall = 10 * n + 1000

        drain()
        while executed_count < n:
            stall_guard += 1
            if stall_guard > max_stall:
                raise RuntimeError("router failed to make progress (internal error)")
            if not front_blocked:
                raise RuntimeError("no two-qubit gate in the front layer while stalled")

            extended: list[int] = []
            cursor = head_2q
            while cursor >= 0 and len(extended) < self.lookahead_size:
                if not in_front[cursor]:
                    extended.append(cursor)
                cursor = nxt[cursor]

            a_phys, b_phys = self._choose_swap_vectorized(
                front_blocked, extended, phys_list, decay, dist, bias,
                q0, q1, cand_keys, n_phys,
            )
            emit(Gate("swap", (a_phys, b_phys), ()))
            swap_count += 1
            decay[a_phys] += self.decay_increment
            decay[b_phys] += self.decay_increment
            la, lb = log_on[a_phys], log_on[b_phys]
            if la >= 0:
                phys_list[la] = b_phys
            if lb >= 0:
                phys_list[lb] = a_phys
            log_on[a_phys], log_on[b_phys] = lb, la

            # Only front gates touching the swapped pair can have become
            # executable; everything else kept its endpoint positions.
            released = [
                i for i in front_blocked if coupled[phys_list[q0[i]]][phys_list[q1[i]]]
            ]
            if released:
                for i in released:
                    front_blocked.remove(i)
                    in_front[i] = False
                    heapq.heappush(ready, i)
                if drain():
                    decay[:] = 1.0

        final_layout = {logical: phys_list[logical] for logical in layout}
        return RoutingResult(
            circuit=routed,
            initial_layout=dict(initial_layout),
            final_layout=final_layout,
            swap_count=swap_count,
        )

    def _choose_swap_vectorized(
        self,
        front_blocked: list[int],
        extended: list[int],
        phys_list: list[int],
        decay: np.ndarray,
        dist: np.ndarray,
        bias: np.ndarray | None,
        q0: list[int],
        q1: list[int],
        cand_keys: list[list[int]],
        n_phys: int,
    ) -> tuple[int, int]:
        """Score every candidate SWAP at once against the dense matrices.

        Float distances accumulate gate-by-gate (vectorized over candidates)
        so the float64 operation order matches the reference engine's scalar
        ``sum()`` exactly -- identical scores, identical ties, identical RNG
        draws.  Integer hop matrices sum in one C reduction instead: integer
        sums are order-independent and stay exact in float64.
        """
        key_set: set[int] = set()
        for i in front_blocked:
            key_set.update(cand_keys[phys_list[q0[i]]])
            key_set.update(cand_keys[phys_list[q1[i]]])
        keys = sorted(key_set)
        a, b = np.divmod(np.fromiter(keys, dtype=np.intp, count=len(keys)), n_phys)

        n_front = len(front_blocked)
        combined = front_blocked + extended
        n_gates = len(combined)
        # Trial endpoint positions under each candidate SWAP: one remap over
        # both endpoints of every front+extended gate, one distance gather.
        pos = [phys_list[q0[i]] for i in combined]
        pos += [phys_list[q1[i]] for i in combined]
        positions = np.array(pos, dtype=np.intp)[:, None]
        trial = np.where(positions == a, b, np.where(positions == b, a, positions))
        pair_dist = dist[trial[:n_gates], trial[n_gates:]]  # (gates, swaps)

        if pair_dist.dtype.kind in "iu":
            front_cost = pair_dist[:n_front].sum(axis=0) / max(n_front, 1)
            extended_cost: np.ndarray | float = 0.0
            if extended:
                extended_cost = pair_dist[n_front:].sum(axis=0) / len(extended)
        else:
            front_cost = pair_dist[0].copy()
            for g in range(1, n_front):
                front_cost += pair_dist[g]
            front_cost /= max(n_front, 1)
            extended_cost = 0.0
            if extended:
                ext = pair_dist[n_front].copy()
                for g in range(n_front + 1, n_gates):
                    ext += pair_dist[g]
                extended_cost = ext / len(extended)
        inner = front_cost + self.lookahead_weight * extended_cost
        if bias is not None:
            # The bias charges the candidate SWAP its own edge cost (always
            # 0.0 under the uniform metric, where adding it is a no-op).
            inner = inner + bias[a, b]
        scores = np.maximum(decay[a], decay[b]) * inner
        best = np.flatnonzero(scores <= scores.min() + 1e-12)
        choice = int(best[self._rng.integers(len(best))]) if len(best) > 1 else int(best[0])
        key = keys[choice]
        return key // n_phys, key % n_phys

    # -- reference engine ----------------------------------------------------

    def _run_reference(
        self,
        circuit: QuantumCircuit,
        initial_layout: dict[int, int],
        layout: dict[int, int],
    ) -> RoutingResult:
        """The original dict-based engine; the golden behavioural reference."""
        physical_of = dict(layout)  # logical -> physical

        routed = QuantumCircuit(self.device.n_qubits, name=f"{circuit.name}_routed")
        remaining = list(circuit.gates)
        # Per-logical-qubit pointer to the next unexecuted gate index.
        pending_idx = 0
        n = len(remaining)
        executed = [False] * n
        # Build per-qubit gate order for dependency tracking.
        per_qubit: dict[int, list[int]] = {q: [] for q in range(circuit.n_qubits)}
        for i, gate in enumerate(remaining):
            for q in gate.qubits:
                per_qubit[q].append(i)
        next_ptr = {q: 0 for q in range(circuit.n_qubits)}

        def gate_ready(i: int) -> bool:
            gate = remaining[i]
            return all(
                per_qubit[q][next_ptr[q]] == i if next_ptr[q] < len(per_qubit[q]) else False
                for q in gate.qubits
            )

        def advance(i: int) -> None:
            executed[i] = True
            for q in remaining[i].qubits:
                next_ptr[q] += 1

        swap_count = 0
        decay = np.ones(self.device.n_qubits)
        stall_guard = 0
        max_stall = 10 * n + 1000

        while not all(executed):
            progressed = False
            # Execute everything currently executable (1Q always; 2Q if coupled).
            for i in range(pending_idx, n):
                if executed[i] or not gate_ready(i):
                    continue
                gate = remaining[i]
                if not gate.is_two_qubit:
                    routed.append(gate.with_qubits(*[physical_of[q] for q in gate.qubits]))
                    advance(i)
                    progressed = True
                    continue
                p0, p1 = physical_of[gate.qubits[0]], physical_of[gate.qubits[1]]
                if self.device.has_edge(p0, p1):
                    routed.append(gate.with_qubits(p0, p1))
                    advance(i)
                    progressed = True
            while pending_idx < n and executed[pending_idx]:
                pending_idx += 1
            if all(executed):
                break
            if progressed:
                decay[:] = 1.0
                continue

            stall_guard += 1
            if stall_guard > max_stall:
                raise RuntimeError("router failed to make progress (internal error)")

            front_ids = [
                i
                for i in range(pending_idx, n)
                if not executed[i] and gate_ready(i) and remaining[i].is_two_qubit
            ]
            front = [remaining[i] for i in front_ids]
            extended = self._extended_set(
                remaining, executed, pending_idx, n, frozenset(front_ids)
            )
            best_swap = self._choose_swap(front, extended, physical_of, decay)
            a_phys, b_phys = best_swap
            routed.swap(a_phys, b_phys)
            swap_count += 1
            decay[a_phys] += self.decay_increment
            decay[b_phys] += self.decay_increment
            # Update the logical->physical mapping.
            inverse = {p: l for l, p in physical_of.items()}
            la, lb = inverse.get(a_phys), inverse.get(b_phys)
            if la is not None:
                physical_of[la] = b_phys
            if lb is not None:
                physical_of[lb] = a_phys

        return RoutingResult(
            circuit=routed,
            initial_layout=dict(initial_layout),
            final_layout=dict(physical_of),
            swap_count=swap_count,
        )

    # -- internals -----------------------------------------------------------

    def _validate_layout(self, circuit: QuantumCircuit, layout: dict[int, int]) -> None:
        if len(layout) < circuit.n_qubits:
            raise ValueError("layout must map every logical qubit")
        physical = list(layout.values())
        if len(set(physical)) != len(physical):
            raise ValueError("layout maps two logical qubits to one physical qubit")
        for p in physical:
            if not 0 <= p < self.device.n_qubits:
                raise ValueError(f"physical qubit {p} outside the device")

    def _extended_set(
        self, remaining, executed, pending_idx, n, front_ids=frozenset()
    ) -> list[Gate]:
        """The look-ahead set: the next two-qubit gates *beyond* the front.

        Per SABRE, front gates already carry full weight in the front term;
        counting them here as well double-weighted the front layer and skewed
        every SWAP score toward it (the pre-fix behaviour).
        """
        extended: list[Gate] = []
        for i in range(pending_idx, n):
            if executed[i] or not remaining[i].is_two_qubit or i in front_ids:
                continue
            extended.append(remaining[i])
            if len(extended) >= self.lookahead_size:
                break
        return extended

    def _choose_swap(
        self,
        front: list[Gate],
        extended: list[Gate],
        physical_of: dict[int, int],
        decay: np.ndarray,
    ) -> tuple[int, int]:
        """Pick the SWAP minimising the SABRE heuristic (scalar reference)."""
        if not front:
            raise RuntimeError("no two-qubit gate in the front layer while stalled")
        candidate_swaps: set[tuple[int, int]] = set()
        for gate in front:
            for logical in gate.qubits:
                phys = physical_of[logical]
                for neighbor in self.device.neighbors(phys):
                    candidate_swaps.add(tuple(sorted((phys, neighbor))))

        def score(swap: tuple[int, int]) -> float:
            a, b = swap
            # Apply the swap to a temporary mapping.
            trial = dict(physical_of)
            inverse = {p: l for l, p in trial.items()}
            la, lb = inverse.get(a), inverse.get(b)
            if la is not None:
                trial[la] = b
            if lb is not None:
                trial[lb] = a
            front_cost = sum(
                self.metric.distance(trial[g.qubits[0]], trial[g.qubits[1]]) for g in front
            )
            front_cost /= max(len(front), 1)
            extended_cost = 0.0
            if extended:
                extended_cost = sum(
                    self.metric.distance(trial[g.qubits[0]], trial[g.qubits[1]])
                    for g in extended
                ) / len(extended)
            # The bias charges the candidate SWAP its own edge cost (0.0 under
            # the uniform metric, where it would cancel across candidates).
            return float(
                max(decay[a], decay[b])
                * (
                    front_cost
                    + self.lookahead_weight * extended_cost
                    + self.metric.swap_bias(a, b)
                )
            )

        swaps = sorted(candidate_swaps)
        scores = np.array([score(s) for s in swaps])
        best = np.flatnonzero(scores <= scores.min() + 1e-12)
        choice = int(best[self._rng.integers(len(best))]) if len(best) > 1 else int(best[0])
        return swaps[choice]
