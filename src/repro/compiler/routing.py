"""SABRE-style heuristic routing (Li, Ding, Xie -- ASPLOS 2019).

Given a circuit over *logical* qubits and an initial layout onto the device's
physical qubits, insert SWAP gates so that every two-qubit gate acts on
physically coupled qubits.  The router keeps a *front layer* of gates whose
per-qubit predecessors have all been executed; when no front gate is
executable it inserts the SWAP that minimises a distance heuristic with a
look-ahead term over the next few pending gates and a decay factor that
discourages ping-ponging the same qubits.

The high SWAP count this pass produces on sparse lattices is exactly why the
paper prioritises SWAP synthesis when choosing basis gates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuits.circuit import Gate, QuantumCircuit
from repro.compiler.cost import HopCountMetric


@dataclass
class RoutingResult:
    """Outcome of routing a circuit onto the device."""

    circuit: QuantumCircuit
    initial_layout: dict[int, int]
    final_layout: dict[int, int]
    swap_count: int


@dataclass
class SabreRouter:
    """A SABRE-style router over an arbitrary coupling graph.

    Args:
        device: object exposing ``n_qubits``, ``has_edge(a, b)``,
            ``neighbors(q)`` and ``distance(a, b)`` (e.g.
            :class:`repro.device.device.Device`).
        lookahead_size: number of not-yet-routable two-qubit gates included in
            the extended (look-ahead) set.
        lookahead_weight: weight of the extended set in the heuristic.
        decay_increment: decay added to a qubit each time it is swapped.
        seed: tie-breaking randomness seed.
        metric: a :class:`~repro.compiler.cost.MappingMetric` supplying the
            distance heuristic and per-edge SWAP costs.  ``None`` (default)
            uses the legacy uniform hop-count metric, which is byte-identical
            to the pre-metric router.
    """

    device: object
    lookahead_size: int = 20
    lookahead_weight: float = 0.5
    decay_increment: float = 0.001
    seed: int = 17
    metric: object = None
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)
        if self.metric is None:
            self.metric = HopCountMetric(self.device)

    # -- public API ---------------------------------------------------------

    def run(
        self, circuit: QuantumCircuit, initial_layout: dict[int, int]
    ) -> RoutingResult:
        """Route ``circuit`` starting from ``initial_layout``.

        The returned circuit acts on *physical* qubit indices and contains the
        original gates (re-indexed) plus inserted ``swap`` gates.
        """
        layout = dict(initial_layout)
        self._validate_layout(circuit, layout)
        physical_of = dict(layout)  # logical -> physical

        routed = QuantumCircuit(self.device.n_qubits, name=f"{circuit.name}_routed")
        remaining = list(circuit.gates)
        # Per-logical-qubit pointer to the next unexecuted gate index.
        pending_idx = 0
        n = len(remaining)
        executed = [False] * n
        # Build per-qubit gate order for dependency tracking.
        per_qubit: dict[int, list[int]] = {q: [] for q in range(circuit.n_qubits)}
        for i, gate in enumerate(remaining):
            for q in gate.qubits:
                per_qubit[q].append(i)
        next_ptr = {q: 0 for q in range(circuit.n_qubits)}

        def gate_ready(i: int) -> bool:
            gate = remaining[i]
            return all(
                per_qubit[q][next_ptr[q]] == i if next_ptr[q] < len(per_qubit[q]) else False
                for q in gate.qubits
            )

        def advance(i: int) -> None:
            executed[i] = True
            for q in remaining[i].qubits:
                next_ptr[q] += 1

        swap_count = 0
        decay = np.ones(self.device.n_qubits)
        stall_guard = 0
        max_stall = 10 * n + 1000

        while not all(executed):
            progressed = False
            # Execute everything currently executable (1Q always; 2Q if coupled).
            for i in range(pending_idx, n):
                if executed[i] or not gate_ready(i):
                    continue
                gate = remaining[i]
                if not gate.is_two_qubit:
                    routed.append(gate.with_qubits(*[physical_of[q] for q in gate.qubits]))
                    advance(i)
                    progressed = True
                    continue
                p0, p1 = physical_of[gate.qubits[0]], physical_of[gate.qubits[1]]
                if self.device.has_edge(p0, p1):
                    routed.append(gate.with_qubits(p0, p1))
                    advance(i)
                    progressed = True
            while pending_idx < n and executed[pending_idx]:
                pending_idx += 1
            if all(executed):
                break
            if progressed:
                decay[:] = 1.0
                continue

            stall_guard += 1
            if stall_guard > max_stall:
                raise RuntimeError("router failed to make progress (internal error)")

            front = [
                remaining[i]
                for i in range(pending_idx, n)
                if not executed[i] and gate_ready(i) and remaining[i].is_two_qubit
            ]
            extended = self._extended_set(remaining, executed, pending_idx, n)
            best_swap = self._choose_swap(front, extended, physical_of, decay)
            a_phys, b_phys = best_swap
            routed.swap(a_phys, b_phys)
            swap_count += 1
            decay[a_phys] += self.decay_increment
            decay[b_phys] += self.decay_increment
            # Update the logical->physical mapping.
            inverse = {p: l for l, p in physical_of.items()}
            la, lb = inverse.get(a_phys), inverse.get(b_phys)
            if la is not None:
                physical_of[la] = b_phys
            if lb is not None:
                physical_of[lb] = a_phys

        return RoutingResult(
            circuit=routed,
            initial_layout=dict(initial_layout),
            final_layout=dict(physical_of),
            swap_count=swap_count,
        )

    # -- internals -----------------------------------------------------------

    def _validate_layout(self, circuit: QuantumCircuit, layout: dict[int, int]) -> None:
        if len(layout) < circuit.n_qubits:
            raise ValueError("layout must map every logical qubit")
        physical = list(layout.values())
        if len(set(physical)) != len(physical):
            raise ValueError("layout maps two logical qubits to one physical qubit")
        for p in physical:
            if not 0 <= p < self.device.n_qubits:
                raise ValueError(f"physical qubit {p} outside the device")

    def _extended_set(self, remaining, executed, pending_idx, n) -> list[Gate]:
        extended: list[Gate] = []
        for i in range(pending_idx, n):
            if executed[i] or not remaining[i].is_two_qubit:
                continue
            extended.append(remaining[i])
            if len(extended) >= self.lookahead_size:
                break
        return extended

    def _choose_swap(
        self,
        front: list[Gate],
        extended: list[Gate],
        physical_of: dict[int, int],
        decay: np.ndarray,
    ) -> tuple[int, int]:
        """Pick the SWAP minimising the SABRE heuristic."""
        if not front:
            raise RuntimeError("no two-qubit gate in the front layer while stalled")
        candidate_swaps: set[tuple[int, int]] = set()
        for gate in front:
            for logical in gate.qubits:
                phys = physical_of[logical]
                for neighbor in self.device.neighbors(phys):
                    candidate_swaps.add(tuple(sorted((phys, neighbor))))

        def score(swap: tuple[int, int]) -> float:
            a, b = swap
            # Apply the swap to a temporary mapping.
            trial = dict(physical_of)
            inverse = {p: l for l, p in trial.items()}
            la, lb = inverse.get(a), inverse.get(b)
            if la is not None:
                trial[la] = b
            if lb is not None:
                trial[lb] = a
            front_cost = sum(
                self.metric.distance(trial[g.qubits[0]], trial[g.qubits[1]]) for g in front
            )
            front_cost /= max(len(front), 1)
            extended_cost = 0.0
            if extended:
                extended_cost = sum(
                    self.metric.distance(trial[g.qubits[0]], trial[g.qubits[1]])
                    for g in extended
                ) / len(extended)
            # The bias charges the candidate SWAP its own edge cost (0.0 under
            # the uniform metric, where it would cancel across candidates).
            return float(
                max(decay[a], decay[b])
                * (
                    front_cost
                    + self.lookahead_weight * extended_cost
                    + self.metric.swap_bias(a, b)
                )
            )

        swaps = sorted(candidate_swaps)
        scores = np.array([score(s) for s in swaps])
        best = np.flatnonzero(scores <= scores.min() + 1e-12)
        choice = int(best[self._rng.integers(len(best))]) if len(best) > 1 else int(best[0])
        return swaps[choice]
