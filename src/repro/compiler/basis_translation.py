"""Translation of routed circuits into per-edge basis gates (Section VII).

After routing, every two-qubit gate acts on a coupled pair, and each pair has
its own calibrated basis gate (selected by the baseline / Criterion 1 /
Criterion 2 strategies).  This pass replaces every two-qubit gate by its
decomposition into that pair's basis gate:

* the paper's *minimalist* approach (used for the nonstandard criteria)
  pre-computes only the SWAP and CNOT decompositions, so all other two-qubit
  gates are first lowered to CNOTs with single-qubit corrections;
* the baseline sqrt(iSWAP) additionally decomposes controlled-phase / ZZ
  gates directly (the analytic approach of Huang et al. cited by the paper).

Single-qubit gates adjacent to a two-qubit block merge into the block's outer
single-qubit layers (every ``n``-layer decomposition already carries ``n + 1``
single-qubit layers), so they add no extra duration; isolated runs of
single-qubit gates cost one 20 ns layer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.circuit import Gate, QuantumCircuit
from repro.compiler.cost import cached_minimum_layers
from repro.synthesis.library import layered_duration
from repro.weyl.cartan import canonicalize_coordinates

Coords = tuple[float, float, float]

#: Two-qubit gate names the "minimalist" strategy decomposes directly.
MINIMALIST_DIRECT_TARGETS = frozenset({"swap", "cx"})
#: Two-qubit gate names the baseline decomposes directly (analytic approach).
BASELINE_DIRECT_TARGETS = frozenset({"swap", "cx", "cz", "cp", "rzz", "iswap", "sqrt_iswap"})


@dataclass
class TranslationOptions:
    """Options controlling the basis-translation pass.

    Attributes:
        direct_targets: names of two-qubit gates decomposed directly into the
            basis gate; every other two-qubit gate is first lowered to CNOTs.
        one_qubit_duration: duration of a single-qubit layer (ns).
        absorb_single_qubit_gates: merge 1Q gates adjacent to 2Q blocks into
            the blocks' outer 1Q layers.
        max_layers: cap on decomposition depth.
        cache_decimals: rounding applied to coordinates when caching layer
            counts (pairs whose basis gates differ by less than this are
            treated alike, which keeps compile times flat across 180 edges).
    """

    direct_targets: frozenset[str] = MINIMALIST_DIRECT_TARGETS
    one_qubit_duration: float = 20.0
    absorb_single_qubit_gates: bool = True
    max_layers: int = 4
    cache_decimals: int = 3

    @classmethod
    def for_strategy(cls, strategy: str, one_qubit_duration: float = 20.0) -> "TranslationOptions":
        """Paper defaults: baseline decomposes directly, criteria lower to CNOT.

        Direct targets come from the strategy's registry spec; unknown names
        raise ``ValueError`` listing the registered strategies.
        """
        from repro.compiler.pipeline.registry import get_strategy_spec

        return cls(
            direct_targets=get_strategy_spec(strategy).direct_targets,
            one_qubit_duration=one_qubit_duration,
        )


@dataclass(frozen=True)
class TranslatedOperation:
    """A physical operation after basis translation.

    ``kind`` is ``"2q"`` for a translated two-qubit block (``layers`` basis
    gates plus interleaved 1Q layers), ``"1q"`` for a standalone single-qubit
    layer, each with a concrete ``duration`` in ns.
    """

    kind: str
    qubits: tuple[int, ...]
    duration: float
    layers: int = 0
    source: str = ""
    edge: tuple[int, int] | None = None

    @property
    def gate(self) -> Gate:
        """A scheduler-compatible gate view of this operation."""
        return Gate(self.source or self.kind, self.qubits)


# Cartan coordinates of the lowering targets (see repro.gates.two_qubit).
_TARGET_COORDS: dict[str, Coords] = {
    "swap": (0.5, 0.5, 0.5),
    "cx": (0.5, 0.0, 0.0),
    "cz": (0.5, 0.0, 0.0),
    "iswap": (0.5, 0.5, 0.0),
    "sqrt_iswap": (0.25, 0.25, 0.0),
}


def target_coordinates(gate: Gate) -> Coords:
    """Cartan coordinates of a named two-qubit gate."""
    if gate.name in _TARGET_COORDS:
        return _TARGET_COORDS[gate.name]
    if gate.name == "cp":
        phi = abs(gate.params[0])
        return canonicalize_coordinates((phi / (2.0 * np.pi), 0.0, 0.0))
    if gate.name == "rzz":
        theta = abs(gate.params[0])
        return canonicalize_coordinates((theta / np.pi, 0.0, 0.0))
    if gate.name == "unitary2q":
        # Consolidated blocks carry their explicit 4x4; extract canonically.
        from repro.weyl.cartan import cartan_coordinates

        return canonicalize_coordinates(cartan_coordinates(gate.matrix()))
    raise ValueError(f"unknown two-qubit gate {gate.name!r}")


def lower_to_cnot(circuit: QuantumCircuit, keep: frozenset[str] = MINIMALIST_DIRECT_TARGETS) -> QuantumCircuit:
    """Rewrite two-qubit gates not in ``keep`` as CNOTs plus 1Q rotations.

    Uses the textbook identities of :mod:`repro.synthesis.analytic`; SWAP and
    CNOT (and anything else listed in ``keep``) pass through untouched.
    """
    lowered = QuantumCircuit(circuit.n_qubits, name=f"{circuit.name}_lowered")
    for gate in circuit.gates:
        if not gate.is_two_qubit or gate.name in keep:
            lowered.append(gate)
            continue
        a, b = gate.qubits
        if gate.name == "cz":
            lowered.h(b)
            lowered.cx(a, b)
            lowered.h(b)
        elif gate.name == "cp":
            phi = gate.params[0]
            lowered.rz(phi / 2, a)
            lowered.rz(phi / 2, b)
            lowered.cx(a, b)
            lowered.rz(-phi / 2, b)
            lowered.cx(a, b)
        elif gate.name == "rzz":
            theta = gate.params[0]
            lowered.cx(a, b)
            lowered.rz(theta, b)
            lowered.cx(a, b)
        elif gate.name in {"iswap", "sqrt_iswap"}:
            # Generic lowering via two CNOTs plus 1Q gates (iSWAP family).
            lowered.s(a)
            lowered.s(b)
            lowered.h(b)
            lowered.cx(a, b)
            lowered.cx(b, a)
            lowered.h(a)
        else:
            raise ValueError(f"no CNOT lowering known for {gate.name!r}")
    return lowered


def translate_circuit(
    routed: QuantumCircuit,
    device,
    strategy: str,
    options: TranslationOptions | None = None,
) -> list[TranslatedOperation]:
    """Translate a routed (physical) circuit into per-edge basis gates.

    Thin wrapper over :func:`translate_operations` that validates the strategy
    name eagerly and looks selections up on the device.
    """
    from repro.compiler.pipeline.registry import validate_strategy

    validate_strategy(strategy)
    options = options if options is not None else TranslationOptions.for_strategy(strategy)
    return translate_operations(
        routed, lambda edge: device.basis_gate(edge, strategy), options
    )


def translate_operations(
    routed: QuantumCircuit,
    basis_lookup,
    options: TranslationOptions,
    cost_model=None,
) -> list[TranslatedOperation]:
    """Translate a routed circuit given an edge -> selection lookup.

    ``basis_lookup`` maps a sorted physical edge to its
    :class:`~repro.core.basis_selection.BasisGateSelection` -- typically
    ``target.basis_gate`` of a pre-built pipeline
    :class:`~repro.compiler.pipeline.target.Target`.  Returns a list of
    :class:`TranslatedOperation` in program order; durations already account
    for the interleaved single-qubit layers and for the absorption of adjacent
    standalone single-qubit gates.

    ``cost_model`` optionally supplies the per-edge SWAP/CNOT layer counts
    and durations pre-derived by a
    :class:`~repro.compiler.cost.CostModel` for the same strategy and 1Q
    duration, so mapping and translation share one set of numbers; pass
    ``None`` (the default) to derive them from the selections on demand --
    the two paths produce identical operations.
    """
    # Consolidated unitary2q blocks have no CNOT lowering -- they decompose
    # straight into the edge's basis at their coverage-set depth.
    lowered = lower_to_cnot(
        routed, keep=options.direct_targets | {"swap", "cx", "unitary2q"}
    )

    merged = _merge_single_qubit_runs(lowered)
    absorbed = _mark_absorbed(merged) if options.absorb_single_qubit_gates else set()

    operations: list[TranslatedOperation] = []
    for index, gate in enumerate(merged):
        if not gate.is_two_qubit:
            duration = 0.0 if index in absorbed else options.one_qubit_duration
            operations.append(
                TranslatedOperation(
                    kind="1q",
                    qubits=gate.qubits,
                    duration=duration,
                    layers=0,
                    source=gate.name,
                )
            )
            continue
        edge = tuple(sorted(gate.qubits))
        if cost_model is not None and gate.name in ("swap", "cx"):
            cost = cost_model.edge_cost(edge)
            if gate.name == "swap":
                layers, duration = cost.swap_layers, cost.swap_duration
            else:
                layers, duration = cost.cnot_layers, cost.cnot_duration
        else:
            selection = basis_lookup(edge)
            if gate.name == "swap":
                layers = selection.swap_layers
            elif gate.name == "cx":
                layers = selection.cnot_layers
            else:
                layers = cached_minimum_layers(
                    target_coordinates(gate),
                    selection.coordinates,
                    max_layers=options.max_layers,
                    decimals=options.cache_decimals,
                )
            duration = layered_duration(layers, selection.duration, options.one_qubit_duration)
        operations.append(
            TranslatedOperation(
                kind="2q",
                qubits=gate.qubits,
                duration=duration,
                layers=layers,
                source=gate.name,
                edge=edge,  # type: ignore[arg-type]
            )
        )
    return operations


def _merge_single_qubit_runs(circuit: QuantumCircuit) -> list[Gate]:
    """Collapse consecutive single-qubit gates on the same qubit into one.

    Any run of 1Q gates compiles into a single physical 20 ns rotation, so the
    duration model should only count it once.
    """
    merged: list[Gate] = []
    last_1q_index: dict[int, int] = {}
    last_touch: dict[int, int] = {}
    for gate in circuit.gates:
        if gate.is_two_qubit:
            merged.append(gate)
            for q in gate.qubits:
                last_touch[q] = len(merged) - 1
                last_1q_index.pop(q, None)
            continue
        (q,) = gate.qubits
        previous = last_1q_index.get(q)
        if previous is not None and last_touch.get(q) == previous:
            # Extend the existing 1Q run: nothing new to emit.
            last_touch[q] = previous
            continue
        merged.append(Gate("u3", (q,), ()))
        last_1q_index[q] = len(merged) - 1
        last_touch[q] = len(merged) - 1
    return merged


def _mark_absorbed(gates: list[Gate]) -> set[int]:
    """Indices of 1Q gates that merge into a neighbouring 2Q decomposition."""
    absorbed: set[int] = set()
    previous_kind: dict[int, tuple[int, bool]] = {}  # qubit -> (index, is_two_qubit)
    # Backward absorption: a 1Q gate right after a 2Q gate on the same qubit.
    for index, gate in enumerate(gates):
        if gate.is_two_qubit:
            for q in gate.qubits:
                previous_kind[q] = (index, True)
        else:
            (q,) = gate.qubits
            if previous_kind.get(q, (None, False))[1]:
                absorbed.add(index)
            previous_kind[q] = (index, False)
    # Forward absorption: a 1Q gate right before a 2Q gate on the same qubit.
    next_kind: dict[int, bool] = {}
    for index in range(len(gates) - 1, -1, -1):
        gate = gates[index]
        if gate.is_two_qubit:
            for q in gate.qubits:
                next_kind[q] = True
        else:
            (q,) = gate.qubits
            if next_kind.get(q, False):
                absorbed.add(index)
            next_kind[q] = False
    return absorbed
