"""Compiler: mapping, routing and basis translation onto the device.

The pipeline mirrors the paper's methodology (Section VIII-C):

1. **Layout** -- choose an initial assignment of logical qubits to physical
   qubits (SABRE-style iterated layout).
2. **Routing** -- insert SWAP gates so every two-qubit gate acts on coupled
   qubits (SABRE-style heuristic router).
3. **Basis translation** -- replace every two-qubit gate with the per-edge
   basis-gate decomposition (direct decomposition for SWAP/CNOT, lowering to
   CNOT for other gates under the nonstandard criteria, direct analytic-style
   decomposition for the baseline sqrt(iSWAP)).
4. **Scheduling + fidelity** -- ASAP schedule and coherence-limited fidelity.
"""

from repro.compiler.layout import greedy_subgraph_layout, sabre_layout, trivial_layout
from repro.compiler.routing import SabreRouter, RoutingResult
from repro.compiler.basis_translation import (
    TranslatedOperation,
    TranslationOptions,
    lower_to_cnot,
    translate_circuit,
)
from repro.compiler.transpile import CompiledCircuit, transpile

__all__ = [
    "greedy_subgraph_layout",
    "sabre_layout",
    "trivial_layout",
    "SabreRouter",
    "RoutingResult",
    "TranslatedOperation",
    "TranslationOptions",
    "lower_to_cnot",
    "translate_circuit",
    "CompiledCircuit",
    "transpile",
]
