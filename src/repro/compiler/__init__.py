"""Compiler: mapping, routing and basis translation onto the device.

The pipeline mirrors the paper's methodology (Section VIII-C):

1. **Layout** -- choose an initial assignment of logical qubits to physical
   qubits (SABRE-style iterated layout).
2. **Routing** -- insert SWAP gates so every two-qubit gate acts on coupled
   qubits (SABRE-style heuristic router).
3. **Basis translation** -- replace every two-qubit gate with the per-edge
   basis-gate decomposition (direct decomposition for SWAP/CNOT, lowering to
   CNOT for other gates under the nonstandard criteria, direct analytic-style
   decomposition for the baseline sqrt(iSWAP)).
4. **Scheduling + fidelity** -- ASAP schedule and coherence-limited fidelity.

Each stage is a :class:`~repro.compiler.pipeline.passes.CompilerPass` run by
a :class:`~repro.compiler.pipeline.manager.PassManager` over a shared
PropertySet; :func:`transpile` and :func:`compare_strategies` are thin
wrappers, and :func:`~repro.compiler.pipeline.batch.transpile_batch` compiles
whole workloads with build-once :class:`~repro.compiler.pipeline.target.Target`
snapshots.  See ``docs/pipeline.md``.
"""

from repro.compiler.cost import (
    DEFAULT_MAPPING,
    BasisAwareMetric,
    CostModel,
    EdgeCost,
    HopCountMetric,
    MappingMetric,
    MappingSpec,
    available_mapping_names,
    build_metric,
    cached_minimum_layers,
    get_mapping_spec,
    register_mapping,
    validate_mapping,
)
from repro.compiler.layout import greedy_subgraph_layout, sabre_layout, trivial_layout
from repro.compiler.routing import SabreRouter, RoutingResult
from repro.compiler.basis_translation import (
    TranslatedOperation,
    TranslationOptions,
    lower_to_cnot,
    translate_circuit,
    translate_operations,
)
from repro.compiler.optimizer import (
    BlockRecord,
    OptimizationResult,
    collect_blocks,
    consolidate_blocks,
    verify_consolidation,
)
from repro.compiler.transpile import CompiledCircuit, compare_strategies, transpile
from repro.compiler.pipeline import (
    AnalysisPass,
    CompilerPass,
    LayoutPass,
    MetricsPass,
    OptimizationPass,
    PassManager,
    PropertySet,
    RoutingPass,
    SchedulePass,
    Target,
    TranslationPass,
    available_strategy_names,
    build_target,
    get_strategy,
    register_strategy,
    transpile_batch,
    validate_strategy,
)

__all__ = [
    "DEFAULT_MAPPING",
    "BasisAwareMetric",
    "CostModel",
    "EdgeCost",
    "HopCountMetric",
    "MappingMetric",
    "MappingSpec",
    "available_mapping_names",
    "build_metric",
    "cached_minimum_layers",
    "get_mapping_spec",
    "register_mapping",
    "validate_mapping",
    "greedy_subgraph_layout",
    "sabre_layout",
    "trivial_layout",
    "SabreRouter",
    "RoutingResult",
    "TranslatedOperation",
    "TranslationOptions",
    "lower_to_cnot",
    "translate_circuit",
    "translate_operations",
    "CompiledCircuit",
    "compare_strategies",
    "transpile",
    "BlockRecord",
    "OptimizationResult",
    "collect_blocks",
    "consolidate_blocks",
    "verify_consolidation",
    "AnalysisPass",
    "CompilerPass",
    "LayoutPass",
    "MetricsPass",
    "OptimizationPass",
    "PassManager",
    "PropertySet",
    "RoutingPass",
    "SchedulePass",
    "Target",
    "TranslationPass",
    "available_strategy_names",
    "build_target",
    "get_strategy",
    "register_strategy",
    "transpile_batch",
    "validate_strategy",
]
