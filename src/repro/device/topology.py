"""Device connectivity graphs.

Superconducting devices use sparse connectivity (grid or heavy-hexagonal
lattices) to keep crosstalk manageable; that sparsity is exactly why routed
circuits contain so many SWAP gates, and why the paper optimises SWAP
synthesis first.  Qubits are integer-labelled 0..n-1; for the grid, qubit
``r * cols + c`` sits at row ``r`` and column ``c`` as in Fig. 7.
"""

from __future__ import annotations

import networkx as nx


def grid_graph(rows: int, cols: int) -> nx.Graph:
    """Rectangular grid lattice with integer qubit labels (row-major)."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    graph = nx.Graph()
    graph.add_nodes_from(range(rows * cols))
    for r in range(rows):
        for c in range(cols):
            q = r * cols + c
            if c + 1 < cols:
                graph.add_edge(q, q + 1)
            if r + 1 < rows:
                graph.add_edge(q, q + cols)
    graph.graph["rows"] = rows
    graph.graph["cols"] = cols
    graph.graph["kind"] = "grid"
    return graph


def linear_graph(n: int) -> nx.Graph:
    """A 1D chain of ``n`` qubits (useful for small tests and examples)."""
    return grid_graph(1, n)


def heavy_hex_graph(distance: int = 3) -> nx.Graph:
    """A heavy-hexagonal lattice in the style of IBM devices.

    The construction places "vertex" qubits on a brick-wall hexagon grid and
    an "edge" qubit in the middle of every hexagon side; connectivity degree
    is at most three, which is why its edge colouring needs fewer colours
    than the square grid (Section VI).
    """
    if distance < 1:
        raise ValueError("distance must be positive")
    rows = 2 * distance + 1
    cols = 2 * distance + 1
    base = grid_graph(rows, cols)
    heavy = nx.Graph()
    heavy.graph["kind"] = "heavy_hex"
    heavy.graph["distance"] = distance
    #: Vertex qubits are 0..vertex_count-1 (grid labels); coupler qubits are
    #: relabelled contiguously from vertex_count on, in base-edge order, so
    #: node labels are always 0..n-1 regardless of how many rungs survive.
    heavy.graph["vertex_count"] = rows * cols
    # Keep grid nodes; subdivide every edge with an intermediate coupler qubit,
    # then delete alternating vertical connections to carve out hexagons.
    next_label = rows * cols
    for u, v in base.edges():
        ru, cu = divmod(u, cols)
        rv, cv = divmod(v, cols)
        vertical = cu == cv
        if vertical and ((cu + ru) % 2 == 1):
            continue  # removed rung: creates the hexagonal holes
        mid = next_label
        next_label += 1
        heavy.add_edge(u, mid)
        heavy.add_edge(mid, v)
    heavy.add_nodes_from(range(rows * cols))
    return heavy


def qubit_position(graph: nx.Graph, qubit: int) -> tuple[int, int]:
    """Row/column position of a qubit on a grid graph.

    Raises:
        ValueError: for non-grid graphs, and for qubit labels outside the
            grid -- ``divmod`` would otherwise happily report a position on a
            row that does not exist.
    """
    if graph.graph.get("kind") != "grid":
        raise ValueError("positions are only defined for grid graphs")
    rows, cols = graph.graph["rows"], graph.graph["cols"]
    if not 0 <= qubit < rows * cols:
        raise ValueError(
            f"qubit {qubit} is not on the {rows}x{cols} grid (0..{rows * cols - 1})"
        )
    return divmod(qubit, cols)


def edge_coloring(graph: nx.Graph) -> dict[tuple[int, int], int]:
    """Greedy proper edge colouring of the device graph.

    Used to schedule parallel calibration: edges with the same colour share no
    qubit and can be calibrated simultaneously (Section VI).  A grid needs at
    most four colours (exact colouring used); other graphs fall back to a
    greedy colouring of the line graph.
    """
    if graph.graph.get("kind") == "grid":
        cols = graph.graph["cols"]
        coloring: dict[tuple[int, int], int] = {}
        for u, v in graph.edges:
            a, b = sorted((u, v))
            if b == a + 1:  # horizontal edge: colour by column parity
                coloring[(a, b)] = (a % cols) % 2
            else:  # vertical edge: colour by row parity
                coloring[(a, b)] = 2 + (a // cols) % 2
        return coloring
    line = nx.line_graph(graph)
    coloring = nx.coloring.greedy_color(line, strategy="largest_first")
    return {tuple(sorted(edge)): color for edge, color in coloring.items()}
