"""Coherence-limited error models (Section VIII-C).

Two fidelity models are used in the paper and reproduced here:

* the *circuit* fidelity model: each qubit contributes ``exp(-t_q / T)`` where
  ``t_q`` spans from the start of its first gate to the end of its last gate,
  and the circuit fidelity is the product over qubits (Table II);
* the *gate* coherence limit: the average gate error of an ``n``-qubit gate of
  a given duration when the only noise is T1/T2 relaxation (Table I; the
  paper uses Qiskit Ignis' ``coherence_limit``, we use the standard
  closed-form limit derived from independent per-qubit relaxation).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np


def decoherence_error(duration: float, coherence_time: float) -> float:
    """Paper's per-qubit decoherence error model ``1 - exp(-t / T)``."""
    if duration < 0:
        raise ValueError("duration must be non-negative")
    if coherence_time <= 0:
        raise ValueError("coherence time must be positive")
    return float(1.0 - np.exp(-duration / coherence_time))


def circuit_coherence_fidelity(
    qubit_busy_times: Mapping[int, float] | Iterable[float], coherence_time: float
) -> float:
    """Coherence-limited circuit fidelity: product of ``exp(-t_q / T)``.

    ``qubit_busy_times`` maps each qubit to ``t_f - t_i`` where ``t_i`` is the
    start of its first gate and ``t_f`` the end of its last gate (idle time in
    between counts, exactly as in the paper).
    """
    if isinstance(qubit_busy_times, Mapping):
        times = list(qubit_busy_times.values())
    else:
        times = list(qubit_busy_times)
    fidelity = 1.0
    for t in times:
        fidelity *= 1.0 - decoherence_error(float(t), coherence_time)
    return float(fidelity)


def _single_qubit_average_fidelity(duration: float, t1: float, t2: float) -> float:
    """Average fidelity of the identity under T1/T2 relaxation for time ``t``.

    Standard closed form: ``F_avg = 1/2 + exp(-t/T2)/3 + exp(-t/T1)/6``.
    """
    return 0.5 + np.exp(-duration / t2) / 3.0 + np.exp(-duration / t1) / 6.0


def coherence_limit(
    num_qubits: int,
    t1_times: Sequence[float],
    t2_times: Sequence[float] | None,
    gate_length: float,
) -> float:
    """Coherence-limited average gate *error* for an ``num_qubits``-qubit gate.

    This mirrors the role of Qiskit Ignis' ``coherence_limit`` in the paper:
    given per-qubit T1/T2 and the gate duration, return the error floor set by
    relaxation alone.  Per-qubit process fidelities are multiplied and
    converted to an average gate fidelity on the full ``2**n`` dimensional
    space.

    Args:
        num_qubits: 1 or 2.
        t1_times: per-qubit T1 (same time units as ``gate_length``).
        t2_times: per-qubit T2; defaults to T2 = T1.
        gate_length: gate duration.
    """
    if num_qubits not in (1, 2):
        raise ValueError("coherence_limit supports 1- and 2-qubit gates")
    t1 = list(t1_times)
    t2 = list(t2_times) if t2_times is not None else list(t1_times)
    if len(t1) != num_qubits or len(t2) != num_qubits:
        raise ValueError("need one T1/T2 value per qubit")
    # T2 cannot exceed 2*T1 physically.
    t2 = [min(b, 2.0 * a) for a, b in zip(t1, t2)]

    process = 1.0
    for a, b in zip(t1, t2):
        f_avg = _single_qubit_average_fidelity(gate_length, a, b)
        f_pro = (3.0 * f_avg - 1.0) / 2.0
        process *= f_pro
    dim = 2**num_qubits
    f_avg_total = (dim * process + 1.0) / (dim + 1.0)
    return float(1.0 - f_avg_total)


def coherence_limited_gate_fidelity(
    duration: float, coherence_time: float, num_qubits: int = 2
) -> float:
    """Convenience wrapper: fidelity (not error) with T1 = T2 = ``coherence_time``."""
    error = coherence_limit(
        num_qubits,
        [coherence_time] * num_qubits,
        [coherence_time] * num_qubits,
        duration,
    )
    return float(1.0 - error)
