"""The simulated 10x10 case-study device (Section VIII-C).

A :class:`Device` owns the connectivity graph, the sampled qubit frequencies,
coherence parameters, and -- lazily -- the per-edge entangler models, Cartan
trajectories and selected basis gates for each selection strategy.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np
import networkx as nx

from repro.core.basis_selection import BasisGateSelection, select_basis_gate
from repro.core.trajectory import CartanTrajectory
from repro.device.sampling import sample_checkerboard_frequencies
from repro.device.topology import grid_graph
from repro.hamiltonian.effective import (
    BASELINE_DRIVE_AMPLITUDE,
    NONSTANDARD_DRIVE_AMPLITUDE,
    EffectiveEntanglerModel,
)

Edge = tuple[int, int]


def default_edge_workers() -> int:
    """Thread count for concurrent edge resolution.

    ``REPRO_EDGE_WORKERS`` overrides; the default scales with the machine and
    degrades to serial resolution on a single-core box, where thread overhead
    would only hurt.
    """
    env = os.getenv("REPRO_EDGE_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return min(8, os.cpu_count() or 1)


def _bfs_distance_matrix(graph: nx.Graph) -> np.ndarray:
    """All-pairs shortest-path hop counts as a dense int matrix.

    Qubits are integer-labelled ``0..n-1`` (a topology-module invariant), so
    a plain breadth-first search per source fills the matrix in O(n(n+m));
    unreachable pairs are marked ``-1``.
    """
    n = graph.number_of_nodes()
    neighbors = [list(graph.neighbors(q)) for q in range(n)]
    matrix = np.full((n, n), -1, dtype=np.int64)
    for source in range(n):
        row = matrix[source]
        row[source] = 0
        frontier = [source]
        depth = 0
        while frontier:
            depth += 1
            reached: list[int] = []
            for node in frontier:
                for neighbor in neighbors[node]:
                    if row[neighbor] < 0:
                        row[neighbor] = depth
                        reached.append(neighbor)
            frontier = reached
    return matrix


@dataclass
class DeviceParameters:
    """Configuration of the simulated device.

    Defaults reproduce the paper's case study: a 10x10 grid, qubit
    frequencies drawn from two populations 2 GHz apart with 5 % standard
    deviation, T = 80 us coherence for every qubit, 20 ns single-qubit gates,
    a 0.005 Phi0 baseline drive and a 0.04 Phi0 nonstandard drive.
    """

    rows: int = 10
    cols: int = 10
    coherence_time_us: float = 80.0
    single_qubit_gate_ns: float = 20.0
    low_freq_mean_ghz: float = 3.2
    high_freq_mean_ghz: float = 5.2
    relative_std: float = 0.05
    baseline_amplitude: float = BASELINE_DRIVE_AMPLITUDE
    nonstandard_amplitude: float = NONSTANDARD_DRIVE_AMPLITUDE
    deviation_scale_std: float = 0.15
    trajectory_resolution_ns: float = 1.0
    #: Default RNG seed.  Chosen so that the sampled mean pair detuning of the
    #: 10x10 checkerboard matches the nominal 2 GHz (an unlucky draw would
    #: rescale every duration by the same factor and obscure the comparison).
    seed: int = 53

    @property
    def coherence_time_ns(self) -> float:
        """Coherence time converted to nanoseconds."""
        return self.coherence_time_us * 1000.0


@dataclass
class EdgeCalibration:
    """Everything known about one edge at one drive amplitude.

    ``selections`` is keyed by (strategy name, registry generation) so that
    re-registering a strategy invalidates the memo.
    """

    edge: Edge
    drive_amplitude: float
    model: EffectiveEntanglerModel
    trajectory: CartanTrajectory
    selections: dict[tuple[str, int], BasisGateSelection] = field(default_factory=dict)


class Device:
    """A simulated device with per-pair entangler models and basis gates."""

    def __init__(
        self,
        graph: nx.Graph | None = None,
        frequencies: dict[int, float] | None = None,
        params: DeviceParameters | None = None,
    ):
        self.params = params if params is not None else DeviceParameters()
        self.graph = graph if graph is not None else grid_graph(self.params.rows, self.params.cols)
        rng = np.random.default_rng(self.params.seed)
        self.frequencies = (
            frequencies
            if frequencies is not None
            else sample_checkerboard_frequencies(
                self.graph,
                low_mean=self.params.low_freq_mean_ghz,
                high_mean=self.params.high_freq_mean_ghz,
                relative_std=self.params.relative_std,
                rng=rng,
            )
        )
        # Pair-specific deviation scales model fabrication variation of the
        # strong-drive systematics; drawn once so results are reproducible.
        self._deviation_scales = {
            self._key(edge): float(max(0.2, rng.normal(1.0, self.params.deviation_scale_std)))
            for edge in self.graph.edges
        }
        self._calibrations: dict[tuple[Edge, float], EdgeCalibration] = {}
        #: Per-edge residual ZZ crosstalk (rad/ns) on top of the drive-induced
        #: deviation.  Zero for a freshly fabricated device; calibration drift
        #: (e.g. a TLS defect activating near a coupler) can set it, so it is
        #: genuine calibration *input* state: pickled with the device and
        #: covered by the fleet cache fingerprint.
        self._static_zz: dict[Edge, float] = {}
        #: Lazy (n, n) int matrix of BFS shortest-path distances; excluded
        #: from pickles like the other derived caches.
        self._distance_matrix: np.ndarray | None = None
        #: Bumped by invalidate_calibrations(); lets held Target snapshots
        #: detect that their resolved selections predate a recalibration.
        self.calibration_epoch = 0

    # -- basic structure -----------------------------------------------------

    @classmethod
    def from_parameters(cls, params: DeviceParameters | None = None) -> "Device":
        """Build the default case-study device from parameters alone."""
        return cls(params=params)

    @property
    def n_qubits(self) -> int:
        """Number of physical qubits."""
        return self.graph.number_of_nodes()

    def edges(self) -> list[Edge]:
        """Sorted list of coupled qubit pairs."""
        return sorted(self._key(edge) for edge in self.graph.edges)

    def neighbors(self, qubit: int) -> list[int]:
        """Neighbouring physical qubits."""
        return sorted(self.graph.neighbors(qubit))

    def has_edge(self, a: int, b: int) -> bool:
        """True if qubits ``a`` and ``b`` are directly coupled."""
        return self.graph.has_edge(a, b)

    def distance(self, a: int, b: int) -> int:
        """Shortest-path distance between two physical qubits.

        Served from a dense numpy matrix computed once by BFS over the
        coupling graph -- far smaller and faster to build than the previous
        dict-of-dicts from ``nx.all_pairs_shortest_path_length``, which the
        router's scoring loop hammered.
        """
        matrix = self.distance_matrix()
        n = matrix.shape[0]
        if not (0 <= a < n and 0 <= b < n):
            # numpy would happily wrap a negative label to the other end of
            # the matrix; the dict-of-dicts this replaced raised instead.
            raise ValueError(f"qubit labels {a}, {b} outside the device (0..{n - 1})")
        hops = int(matrix[a, b])
        if hops < 0:
            raise ValueError(f"qubits {a} and {b} are not connected on the device")
        return hops

    def distance_matrix(self) -> np.ndarray:
        """The dense all-pairs BFS hop matrix (``-1`` marks unreachable).

        Computed once and cached; the vectorized router and the
        shared-memory dispatch snapshots read it directly, so treat the
        returned array as read-only.
        """
        if self._distance_matrix is None:
            self._distance_matrix = _bfs_distance_matrix(self.graph)
        return self._distance_matrix

    def adopt_distance_matrix(self, matrix: np.ndarray) -> None:
        """Install an externally computed BFS hop matrix.

        Used by process-pool workers to adopt the parent's shared-memory
        snapshot instead of re-running BFS; the caller guarantees the matrix
        matches this device's coupling graph.
        """
        matrix = np.asarray(matrix)
        expected = (self.n_qubits, self.n_qubits)
        if matrix.shape != expected:
            raise ValueError(
                f"distance matrix shape {matrix.shape} does not match "
                f"device shape {expected}"
            )
        self._distance_matrix = matrix

    @property
    def coherence_time_ns(self) -> float:
        """Per-qubit coherence time in ns (T1 = T2 = T)."""
        return self.params.coherence_time_ns

    @property
    def single_qubit_duration(self) -> float:
        """Single-qubit gate duration in ns."""
        return self.params.single_qubit_gate_ns

    @staticmethod
    def _key(edge: Edge) -> Edge:
        a, b = edge
        return (a, b) if a < b else (b, a)

    # -- pickling --------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Pickle the device's configuration, not its lazy calibration caches.

        Process-pool compilation ships the device to workers alongside fully
        resolved :class:`~repro.compiler.pipeline.target.Target` snapshots, so
        the workers never re-simulate an edge; dropping the memoised
        trajectories keeps the payload small.  Any other consumer of an
        unpickled device simply recalibrates lazily on first use.
        """
        state = self.__dict__.copy()
        state["_calibrations"] = {}
        state["_distance_matrix"] = None  # derived; recomputed on first use
        state.pop("_sabre_adjacency", None)  # router-derived; rebuilt on use
        return state

    # -- entangler models and trajectories ------------------------------------

    def deviation_scale(self, edge: Edge) -> float:
        """Pair-specific strong-drive deviation multiplier."""
        return self._deviation_scales[self._key(edge)]

    def static_zz(self, edge: Edge) -> float:
        """Residual always-on ZZ crosstalk for an edge (rad/ns; 0 by default)."""
        return self._static_zz.get(self._key(edge), 0.0)

    def entangler_model(self, edge: Edge, drive_amplitude: float) -> EffectiveEntanglerModel:
        """Effective entangler model for an edge at a drive amplitude."""
        a, b = self._key(edge)
        if not self.graph.has_edge(a, b):
            raise ValueError(f"{edge} is not an edge of the device")
        return EffectiveEntanglerModel.for_pair(
            self.frequencies[a],
            self.frequencies[b],
            drive_amplitude,
            deviation_scale=self.deviation_scale(edge),
            static_zz=self.static_zz((a, b)),
        )

    def update_calibration(
        self,
        *,
        frequencies: dict[int, float] | None = None,
        frequency_shifts: dict[int, float] | None = None,
        coherence_time_us: float | None = None,
        deviation_scales: dict[Edge, float] | None = None,
        static_zz: dict[Edge, float] | None = None,
        invalidate: bool = True,
    ) -> None:
        """Mutate the device's calibration inputs in place, then invalidate.

        The single sanctioned way to model calibration drift: qubit
        frequencies move (absolute ``frequencies`` or additive
        ``frequency_shifts``), coherence degrades, pair deviation scales or
        residual ZZ terms jump.  Unknown qubit labels or non-edges raise
        ``ValueError`` before anything is touched, and every mutation ends in
        :meth:`invalidate_calibrations` (unless ``invalidate=False``, used by
        the drift engine to batch several models' mutations into one epoch
        bump).

        Example::

            device.update_calibration(frequency_shifts={0: 0.02},
                                      coherence_time_us=72.0)
            # held Target snapshots for this device are now stale; rebuild
            # with build_target(device, strategy)
        """
        def _as_floats(mapping, what: str) -> dict:
            try:
                return {key: float(value) for key, value in mapping.items()}
            except (TypeError, ValueError) as error:
                raise ValueError(f"{what} values must be numbers: {error}") from error

        # Validate everything -- labels, edges AND values -- before touching
        # any state: a mid-loop failure must not leave the device partially
        # drifted with no epoch bump (stale caches would then be served).
        frequencies = _as_floats(frequencies or {}, "frequencies")
        frequency_shifts = _as_floats(frequency_shifts or {}, "frequency_shifts")
        deviation_scales = _as_floats(deviation_scales or {}, "deviation_scales")
        static_zz = _as_floats(static_zz or {}, "static_zz")
        for label in list(frequencies) + list(frequency_shifts):
            if label not in self.frequencies:
                raise ValueError(f"unknown qubit label {label!r} in calibration update")
        for edge in list(deviation_scales) + list(static_zz):
            a, b = edge
            if not self.graph.has_edge(a, b):
                raise ValueError(f"{tuple(edge)} is not an edge of the device")
        if coherence_time_us is not None:
            coherence_time_us = float(coherence_time_us)
            if coherence_time_us <= 0:
                raise ValueError(
                    f"coherence_time_us must be positive, got {coherence_time_us}"
                )
        for label, value in frequencies.items():
            self.frequencies[label] = value
        for label, delta in frequency_shifts.items():
            self.frequencies[label] = float(self.frequencies[label] + delta)
        if coherence_time_us is not None:
            self.params.coherence_time_us = coherence_time_us
        for edge, scale in deviation_scales.items():
            self._deviation_scales[self._key(edge)] = scale
        for edge, value in static_zz.items():
            self._static_zz[self._key(edge)] = value
        if invalidate:
            self.invalidate_calibrations()

    def invalidate_calibrations(self) -> None:
        """Drop every memoised trajectory and basis-gate selection.

        Call after changing device state in place (frequencies, parameters):
        the next lookup re-simulates each edge.  The compilation pipeline's
        cached :class:`~repro.compiler.pipeline.target.Target` snapshots for
        this device are dropped too, so subsequent ``transpile`` calls see
        the new state.  ``build_target(..., refresh=True)`` is equivalent to
        calling this first.
        """
        self._calibrations.clear()
        self.calibration_epoch += 1
        from repro.compiler.pipeline.target import invalidate_device_targets

        invalidate_device_targets(self)

    def _build_edge_calibration(
        self, edge: Edge, drive_amplitude: float
    ) -> EdgeCalibration:
        """Simulate one edge's trajectory; pure (no device state mutated).

        Safe to run from worker threads: it only reads the frequency table
        and edge parameters, and returns a fresh :class:`EdgeCalibration`
        that the caller is responsible for memoising.
        """
        model = self.entangler_model(edge, drive_amplitude)
        # Scan a bit past the sqrt(iSWAP) point so every strategy finds its
        # crossing; the XY rate sets the natural timescale.
        max_duration = 0.7 * np.pi / model.xy_rate
        resolution = max(
            self.params.trajectory_resolution_ns, max_duration / 400.0
        )
        trajectory = CartanTrajectory.from_model(
            model,
            max_duration=max_duration,
            resolution=resolution,
            label=f"edge {self._key(edge)} @ {drive_amplitude} Phi0",
        )
        return EdgeCalibration(
            edge=self._key(edge),
            drive_amplitude=float(drive_amplitude),
            model=model,
            trajectory=trajectory,
        )

    def calibration(self, edge: Edge, drive_amplitude: float) -> EdgeCalibration:
        """Trajectory (and cached selections) for an edge at an amplitude."""
        key = (self._key(edge), float(drive_amplitude))
        if key not in self._calibrations:
            self._calibrations[key] = self._build_edge_calibration(
                edge, drive_amplitude
            )
        return self._calibrations[key]

    # -- basis-gate selection --------------------------------------------------

    def amplitude_for_strategy(self, strategy: str) -> float:
        """Drive amplitude used by a named strategy in the case study.

        Each strategy declares its amplitude class on its
        :class:`~repro.compiler.pipeline.registry.StrategySpec`; unknown
        names raise ``ValueError`` listing the registered strategies.
        """
        from repro.compiler.pipeline.registry import get_strategy_spec

        return (
            self.params.baseline_amplitude
            if get_strategy_spec(strategy).uses_baseline_amplitude
            else self.params.nonstandard_amplitude
        )

    def basis_gate(self, edge: Edge, strategy: str) -> BasisGateSelection:
        """The basis gate selected for an edge by a named strategy."""
        from repro.compiler.pipeline.registry import REGISTRY, validate_strategy

        validate_strategy(strategy)
        amplitude = self.amplitude_for_strategy(strategy)
        calibration = self.calibration(edge, amplitude)
        # The generation invalidates memoised selections when a strategy name
        # is re-registered with a new definition; stale generations are evicted.
        key = (strategy, REGISTRY.generation(strategy))
        if key not in calibration.selections:
            for stale in [k for k in calibration.selections if k[0] == strategy]:
                del calibration.selections[stale]
            calibration.selections[key] = select_basis_gate(
                calibration.trajectory, strategy
            )
        return calibration.selections[key]

    def resolve_basis_gates(
        self,
        edges: Sequence[Edge],
        strategy: str,
        max_workers: int | None = None,
    ) -> dict[Edge, BasisGateSelection]:
        """Basis gates for many edges at once, resolved concurrently.

        Semantically identical to calling :meth:`basis_gate` per edge -- the
        same memoisation and stale-generation eviction apply, and the
        selections are byte-identical -- but trajectory simulation fans out
        over ``max_workers`` threads (:func:`default_edge_workers` when None)
        and the feasibility scans run batched across edges.  Workers only
        *compute*; all memo-dict mutation happens on the calling thread in
        deterministic edge order.
        """
        from repro.compiler.pipeline.registry import (
            REGISTRY,
            get_strategy,
            validate_strategy,
        )

        validate_strategy(strategy)
        amplitude = float(self.amplitude_for_strategy(strategy))
        selection_key = (strategy, REGISTRY.generation(strategy))

        results: dict[Edge, BasisGateSelection] = {}
        pending: list[Edge] = []
        for edge in edges:
            key = self._key(edge)
            calibration = self._calibrations.get((key, amplitude))
            selection = (
                calibration.selections.get(selection_key) if calibration else None
            )
            if selection is not None:
                results[key] = selection
            elif key not in pending:
                pending.append(key)
        if not pending:
            return results

        missing = [e for e in pending if (e, amplitude) not in self._calibrations]
        workers = max_workers if max_workers is not None else default_edge_workers()
        workers = max(1, min(workers, len(missing))) if missing else 1
        if workers > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                built = list(
                    pool.map(
                        lambda edge: self._build_edge_calibration(edge, amplitude),
                        missing,
                    )
                )
        else:
            built = [self._build_edge_calibration(e, amplitude) for e in missing]
        for edge, calibration in zip(missing, built):
            self._calibrations.setdefault((edge, amplitude), calibration)

        strategy_obj = get_strategy(strategy)
        trajectories = [
            self._calibrations[(e, amplitude)].trajectory for e in pending
        ]
        selections = strategy_obj.select_batch(trajectories)
        for edge, selection in zip(pending, selections):
            calibration = self._calibrations[(edge, amplitude)]
            for stale in [k for k in calibration.selections if k[0] == strategy]:
                del calibration.selections[stale]
            calibration.selections[selection_key] = selection
            results[edge] = selection
        return results

    def basis_gates(self, strategy: str) -> dict[Edge, BasisGateSelection]:
        """Basis gates for every edge under a named strategy.

        Convenience wrapper over the pipeline's cached per-device
        :class:`~repro.compiler.pipeline.target.Target`, so the device and
        the compiler share one snapshot layer.
        """
        from repro.compiler.pipeline.target import build_target

        return dict(build_target(self, strategy).complete().selections)

    def average_basis_duration(self, strategy: str) -> float:
        """Average selected basis-gate duration over all edges (ns)."""
        from repro.compiler.pipeline.target import build_target

        return build_target(self, strategy).average_basis_duration()
