"""Qubit-frequency sampling for the simulated device (Section VIII-C).

The paper samples neighbouring qubits from two normal distributions whose
means differ by 2 GHz, with a 5 % standard deviation -- deliberately larger
than today's fabrication spread to demonstrate robustness.  On a grid the
two populations alternate in a checkerboard (Fig. 7), so every edge couples a
high-frequency qubit to a low-frequency qubit (far-detuned pairs).
"""

from __future__ import annotations

import numpy as np
import networkx as nx


def sample_checkerboard_frequencies(
    graph: nx.Graph,
    low_mean: float = 3.2,
    high_mean: float = 5.2,
    relative_std: float = 0.05,
    rng: np.random.Generator | None = None,
) -> dict[int, float]:
    """Sample per-qubit frequencies (GHz) in a checkerboard pattern.

    Grid graphs use the row+column parity for the checkerboard; bipartite
    lattices (heavy-hex included) use an exact two-colouring, so every edge
    is guaranteed to couple a far-detuned pair; non-bipartite graphs fall
    back to a greedy colouring folded to two populations, where an odd cycle
    necessarily leaves some near-resonant neighbours.
    """
    rng = rng if rng is not None else np.random.default_rng()
    if high_mean <= low_mean:
        raise ValueError("high_mean must exceed low_mean")

    if graph.graph.get("kind") == "grid":
        cols = graph.graph["cols"]
        parity = {q: (q // cols + q % cols) % 2 for q in graph.nodes}
    else:
        try:
            parity = nx.algorithms.bipartite.color(graph)
        except nx.NetworkXError:  # odd cycle: no proper two-colouring exists
            coloring = nx.coloring.greedy_color(graph, strategy="largest_first")
            parity = {q: coloring[q] % 2 for q in graph.nodes}

    frequencies: dict[int, float] = {}
    for qubit in sorted(graph.nodes):
        if parity[qubit] == 0:
            mean, std = low_mean, relative_std * low_mean
        else:
            mean, std = high_mean, relative_std * high_mean
        frequencies[qubit] = float(rng.normal(mean, std))
    return frequencies


def frequency_populations(frequencies: dict[int, float], split: float | None = None) -> dict[str, list[int]]:
    """Partition qubits into the low and high frequency populations."""
    values = np.array(list(frequencies.values()))
    threshold = float(np.median(values)) if split is None else split
    low = [q for q, f in frequencies.items() if f <= threshold]
    high = [q for q, f in frequencies.items() if f > threshold]
    return {"low": sorted(low), "high": sorted(high)}


def pair_detunings(graph: nx.Graph, frequencies: dict[int, float]) -> dict[tuple[int, int], float]:
    """Absolute qubit-qubit detuning (GHz) for every edge of the device."""
    return {
        tuple(sorted((u, v))): abs(frequencies[u] - frequencies[v])
        for u, v in graph.edges
    }
