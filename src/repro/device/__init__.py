"""Simulated superconducting device (Section VIII-C).

A :class:`~repro.device.device.Device` bundles the qubit lattice, per-qubit
frequencies and coherence times, and the per-edge entangler models from which
Cartan trajectories and basis gates are derived.  The default configuration is
the paper's case study: a 10x10 grid whose neighbouring qubits are drawn from
two frequency populations 2 GHz apart with 5 % standard deviation, all with
T = 80 us coherence and 20 ns single-qubit gates.
"""

from repro.device.topology import grid_graph, heavy_hex_graph, linear_graph
from repro.device.sampling import sample_checkerboard_frequencies
from repro.device.device import Device, DeviceParameters, EdgeCalibration
from repro.device.noise import (
    coherence_limit,
    circuit_coherence_fidelity,
    decoherence_error,
)

__all__ = [
    "grid_graph",
    "heavy_hex_graph",
    "linear_graph",
    "sample_checkerboard_frequencies",
    "Device",
    "DeviceParameters",
    "EdgeCalibration",
    "coherence_limit",
    "circuit_coherence_fidelity",
    "decoherence_error",
]
