"""Declarative scenario specs for the continuous-operation control plane.

A scenario is a JSON document -- parsed with the same readable-error
conventions as :class:`~repro.service.requests.CompileRequest` (unknown
fields rejected, every message client-readable, never a traceback) -- that
composes a **timeline of phases** over a fixed deployment:

* ``devices`` -- the served fleet (same identity axes as compile traffic);
* ``workload`` -- the traffic mix: circuits, strategies, mapping, tenants;
* ``drift`` -- the drift models each device's clock applies per tick;
* ``cluster`` -- deployment shape overrides (shard count, queue bounds);
* ``slo`` -- the global SLO every phase is judged against (phases may
  override individual limits);
* ``phases`` -- the timeline: ``traffic`` / ``drift`` / ``canary`` /
  ``chaos`` entries executed in order by the
  :class:`~repro.ops.runner.ScenarioRunner`.

``ScenarioSpec.from_dict`` normalizes and cross-validates the whole
document up front (every circuit must fit every device, drift models must
parse, chaos probes must be known), so a malformed scenario fails before
any process is spawned.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from repro.drift.models import parse_drift_model
from repro.service.requests import (
    DEFAULT_COHERENCE_US,
    DEFAULT_GATE_NS,
    CompileRequest,
    RequestError,
)

#: Phase kinds the runner knows how to execute.
PHASE_KINDS = ("traffic", "drift", "canary", "chaos")

#: Chaos probes the runner can fire (see docs/ops.md for the catalog).
CHAOS_PROBES = ("shard_kill", "calibration_storm", "corrupt_cache")


class ScenarioError(ValueError):
    """A malformed scenario; the message is operator-readable."""


def _require_mapping(data, label: str) -> Mapping:
    if not isinstance(data, Mapping):
        raise ScenarioError(
            f"{label} must be an object, got {type(data).__name__}"
        )
    return data


def _reject_unknown(data: Mapping, known: set, label: str) -> None:
    unknown = sorted(set(data) - known)
    if unknown:
        raise ScenarioError(
            f"unknown {label} field(s) {unknown}; expected a subset of "
            f"{sorted(known)}"
        )


def _check_int(data: Mapping, name: str, label: str, minimum: int) -> None:
    if name in data:
        value = data[name]
        if isinstance(value, bool) or not isinstance(value, int):
            raise ScenarioError(f"{label} {name} must be an integer, got {value!r}")
        if value < minimum:
            raise ScenarioError(f"{label} {name} must be >= {minimum}, got {value}")


def _check_number(data: Mapping, name: str, label: str) -> dict:
    out = dict(data)
    if name in out and out[name] is not None:
        value = out[name]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ScenarioError(f"{label} {name} must be a number, got {value!r}")
        out[name] = float(value)
    return out


def _check_names(data: Mapping, name: str, label: str) -> dict:
    out = dict(data)
    if name in out and out[name] is not None:
        values = out[name]
        if isinstance(values, str):
            values = [values]
        if not isinstance(values, (list, tuple)) or not all(
            isinstance(v, str) for v in values
        ):
            raise ScenarioError(
                f"{label} {name} must be a list of names, got {values!r}"
            )
        out[name] = tuple(values)
    return out


@dataclass(frozen=True)
class SLOSpec:
    """Per-phase pass/fail limits.

    ``None`` disables a limit.  ``max_stale_serves`` counts responses that
    carried a retired calibration fingerprint for a request *sent after*
    the retiring calibration acked; ``max_dropped`` counts accepted requests
    that errored (sheds retried to success are not drops).
    """

    fidelity_floor: float | None = None
    latency_p95_ms: float | None = None
    latency_p99_ms: float | None = None
    max_stale_serves: int = 0
    max_dropped: int = 0

    @classmethod
    def from_dict(cls, data: Mapping, label: str = "slo") -> "SLOSpec":
        data = _require_mapping(data, label)
        known = {
            "fidelity_floor",
            "latency_p95_ms",
            "latency_p99_ms",
            "max_stale_serves",
            "max_dropped",
        }
        _reject_unknown(data, known, label)
        kwargs = dict(data)
        for name in ("fidelity_floor", "latency_p95_ms", "latency_p99_ms"):
            kwargs = _check_number(kwargs, name, label)
        for name in ("max_stale_serves", "max_dropped"):
            _check_int(kwargs, name, label, minimum=0)
        if kwargs.get("fidelity_floor") is not None and not (
            0.0 <= kwargs["fidelity_floor"] <= 1.0
        ):
            raise ScenarioError(
                f"{label} fidelity_floor must be in [0, 1], got "
                f"{kwargs['fidelity_floor']}"
            )
        return cls(**kwargs)

    def merged(self, override: "SLOSpec | None") -> "SLOSpec":
        """The SLO a phase is judged against: its own when set, else this one.

        A phase ``slo`` block replaces the scenario SLO wholesale -- partial
        merges would make a phase's effective limits depend on two documents
        at once, which reads badly in a post-mortem.
        """
        if override is None:
            return self
        return override

    def to_dict(self) -> dict:
        return {
            "fidelity_floor": self.fidelity_floor,
            "latency_p95_ms": self.latency_p95_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "max_stale_serves": self.max_stale_serves,
            "max_dropped": self.max_dropped,
        }


@dataclass(frozen=True)
class DeviceSpec:
    """One served device's identity (the same axes compile traffic names)."""

    topology: str = "grid:3x3"
    device_seed: int = 11
    coherence_us: float = DEFAULT_COHERENCE_US
    gate_ns: float = DEFAULT_GATE_NS

    @classmethod
    def from_dict(cls, data: Mapping) -> "DeviceSpec":
        data = _require_mapping(data, "device")
        known = {"topology", "device_seed", "coherence_us", "gate_ns"}
        _reject_unknown(data, known, "device")
        kwargs = dict(data)
        if "topology" in kwargs and not isinstance(kwargs["topology"], str):
            raise ScenarioError(
                f"device topology must be a string, got {kwargs['topology']!r}"
            )
        _check_int(kwargs, "device_seed", "device", minimum=0)
        for name in ("coherence_us", "gate_ns"):
            kwargs = _check_number(kwargs, name, "device")
        return cls(**kwargs)

    def to_dict(self) -> dict:
        return {
            "topology": self.topology,
            "device_seed": self.device_seed,
            "coherence_us": self.coherence_us,
            "gate_ns": self.gate_ns,
        }


@dataclass(frozen=True)
class WorkloadSpec:
    """The sustained traffic mix a ``traffic`` phase replays."""

    circuits: tuple[str, ...] = ("ghz_3",)
    strategies: tuple[str, ...] = ("criterion2",)
    mapping: str = "hop_count"
    seed: int = 17
    tenants: tuple[str, ...] = ("default",)
    concurrency: int = 4

    @classmethod
    def from_dict(cls, data: Mapping) -> "WorkloadSpec":
        data = _require_mapping(data, "workload")
        known = {"circuits", "strategies", "mapping", "seed", "tenants",
                 "concurrency"}
        _reject_unknown(data, known, "workload")
        kwargs = dict(data)
        for name in ("circuits", "strategies", "tenants"):
            kwargs = _check_names(kwargs, name, "workload")
        if "mapping" in kwargs and not isinstance(kwargs["mapping"], str):
            raise ScenarioError(
                f"workload mapping must be a string, got {kwargs['mapping']!r}"
            )
        _check_int(kwargs, "seed", "workload", minimum=0)
        _check_int(kwargs, "concurrency", "workload", minimum=1)
        spec = cls(**kwargs)
        if not spec.circuits:
            raise ScenarioError("workload needs at least one circuit")
        if not spec.strategies:
            raise ScenarioError("workload needs at least one strategy")
        if not spec.tenants:
            raise ScenarioError("workload needs at least one tenant")
        return spec

    def to_dict(self) -> dict:
        return {
            "circuits": list(self.circuits),
            "strategies": list(self.strategies),
            "mapping": self.mapping,
            "seed": self.seed,
            "tenants": list(self.tenants),
            "concurrency": self.concurrency,
        }


@dataclass(frozen=True)
class PhaseSpec:
    """One timeline entry; which fields apply depends on ``kind``."""

    kind: str
    name: str = ""
    slo: SLOSpec | None = None
    # traffic
    repeats: int = 1
    drift_ticks: int = 0
    # drift
    ticks: int = 1
    # canary
    fraction: float = 0.25
    candidate_strategies: tuple[str, ...] | None = None
    candidate_mapping: str | None = None
    tolerance: float = 0.0
    # chaos
    probe: str = "shard_kill"
    shard: str | None = None
    entries: int = 4

    _COMMON = {"kind", "name", "slo"}
    _FIELDS = {
        "traffic": {"repeats", "drift_ticks"},
        "drift": {"ticks"},
        "canary": {"fraction", "candidate_strategies", "candidate_mapping",
                   "tolerance", "repeats"},
        "chaos": {"probe", "shard", "ticks", "entries", "repeats"},
    }

    @classmethod
    def from_dict(cls, data: Mapping, index: int) -> "PhaseSpec":
        label = f"phase[{index}]"
        data = _require_mapping(data, label)
        kind = data.get("kind")
        if kind not in PHASE_KINDS:
            raise ScenarioError(
                f"{label} has unknown kind {kind!r}; expected one of "
                f"{list(PHASE_KINDS)}"
            )
        _reject_unknown(data, cls._COMMON | cls._FIELDS[kind], label)
        kwargs = dict(data)
        if "name" in kwargs and not isinstance(kwargs["name"], str):
            raise ScenarioError(
                f"{label} name must be a string, got {kwargs['name']!r}"
            )
        if "slo" in kwargs and kwargs["slo"] is not None:
            kwargs["slo"] = SLOSpec.from_dict(kwargs["slo"], f"{label} slo")
        for name in ("repeats", "ticks"):
            _check_int(kwargs, name, label, minimum=1)
        for name in ("drift_ticks", "entries"):
            _check_int(kwargs, name, label, minimum=0)
        if kind == "canary":
            kwargs = _check_number(kwargs, "fraction", label)
            kwargs = _check_number(kwargs, "tolerance", label)
            kwargs = _check_names(kwargs, "candidate_strategies", label)
            if "candidate_mapping" in kwargs and kwargs[
                "candidate_mapping"
            ] is not None and not isinstance(kwargs["candidate_mapping"], str):
                raise ScenarioError(
                    f"{label} candidate_mapping must be a string, got "
                    f"{kwargs['candidate_mapping']!r}"
                )
            fraction = kwargs.get("fraction", cls.fraction)
            if not 0.0 < fraction <= 1.0:
                raise ScenarioError(
                    f"{label} fraction must be in (0, 1], got {fraction}"
                )
            if kwargs.get("tolerance", 0.0) < 0.0:
                raise ScenarioError(
                    f"{label} tolerance must be >= 0, got {kwargs['tolerance']}"
                )
            if (
                kwargs.get("candidate_strategies") is None
                and kwargs.get("candidate_mapping") is None
            ):
                raise ScenarioError(
                    f"{label} needs candidate_strategies or candidate_mapping"
                )
        if kind == "chaos":
            probe = kwargs.get("probe", cls.probe)
            if probe not in CHAOS_PROBES:
                raise ScenarioError(
                    f"{label} has unknown probe {probe!r}; expected one of "
                    f"{list(CHAOS_PROBES)}"
                )
            if "shard" in kwargs and kwargs["shard"] is not None and not isinstance(
                kwargs["shard"], str
            ):
                raise ScenarioError(
                    f"{label} shard must be a string, got {kwargs['shard']!r}"
                )
        return cls(**kwargs)

    @property
    def label(self) -> str:
        """Display name: the explicit ``name`` or a kind-derived default."""
        if self.name:
            return self.name
        if self.kind == "chaos":
            return f"chaos:{self.probe}"
        return self.kind

    def to_dict(self) -> dict:
        doc: dict = {"kind": self.kind}
        if self.name:
            doc["name"] = self.name
        if self.slo is not None:
            doc["slo"] = self.slo.to_dict()
        if self.kind == "traffic":
            doc.update(repeats=self.repeats, drift_ticks=self.drift_ticks)
        elif self.kind == "drift":
            doc.update(ticks=self.ticks)
        elif self.kind == "canary":
            doc.update(
                fraction=self.fraction,
                candidate_strategies=(
                    list(self.candidate_strategies)
                    if self.candidate_strategies is not None
                    else None
                ),
                candidate_mapping=self.candidate_mapping,
                tolerance=self.tolerance,
                repeats=self.repeats,
            )
        elif self.kind == "chaos":
            doc.update(probe=self.probe, repeats=self.repeats)
            if self.probe == "shard_kill":
                doc["shard"] = self.shard
            elif self.probe == "calibration_storm":
                doc["ticks"] = self.ticks
            elif self.probe == "corrupt_cache":
                doc["entries"] = self.entries
        return doc


@dataclass(frozen=True)
class ScenarioSpec:
    """One whole scenario: deployment + timeline + SLOs."""

    name: str = "scenario"
    devices: tuple[DeviceSpec, ...] = (DeviceSpec(),)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    drift_models: tuple[str, ...] = ("ou:sigma_ghz=0.08",)
    drift_seed: int = 99
    cluster: tuple[tuple[str, object], ...] = ()
    slo: SLOSpec = field(default_factory=SLOSpec)
    warm_start: bool = False
    phases: tuple[PhaseSpec, ...] = ()

    _CLUSTER_FIELDS = {
        "shards": (int, 1),
        "max_pending_per_shard": (int, 1),
        "connections_per_shard": (int, 1),
        "max_workers": (int, 1),
        "batch_window_ms": ((int, float), 0),
        "executor": (str, None),
    }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ScenarioSpec":
        data = _require_mapping(data, "scenario")
        known = {"name", "devices", "workload", "drift", "cluster", "slo",
                 "warm_start", "phases"}
        _reject_unknown(data, known, "scenario")
        name = data.get("name", "scenario")
        if not isinstance(name, str) or not name:
            raise ScenarioError(f"scenario name must be a non-empty string, got {name!r}")

        devices_data = data.get("devices", [{}])
        if not isinstance(devices_data, (list, tuple)) or not devices_data:
            raise ScenarioError(
                f"scenario devices must be a non-empty list, got {devices_data!r}"
            )
        devices = tuple(DeviceSpec.from_dict(entry) for entry in devices_data)

        workload = WorkloadSpec.from_dict(data.get("workload", {}))

        drift_data = _require_mapping(data.get("drift", {}), "drift")
        _reject_unknown(drift_data, {"models", "seed"}, "drift")
        drift_kwargs = _check_names(drift_data, "models", "drift")
        _check_int(drift_kwargs, "seed", "drift", minimum=0)
        drift_models = drift_kwargs.get("models", cls.drift_models)
        if not drift_models:
            raise ScenarioError("drift needs at least one model")
        drift_seed = drift_kwargs.get("seed", cls.drift_seed)

        cluster_data = _require_mapping(data.get("cluster", {}), "cluster")
        _reject_unknown(cluster_data, set(cls._CLUSTER_FIELDS), "cluster")
        for key, (kind, minimum) in cls._CLUSTER_FIELDS.items():
            if key in cluster_data:
                value = cluster_data[key]
                if isinstance(value, bool) or not isinstance(value, kind):
                    raise ScenarioError(
                        f"cluster {key} must be {getattr(kind, '__name__', 'number')},"
                        f" got {value!r}"
                    )
                if minimum is not None and value < minimum:
                    raise ScenarioError(
                        f"cluster {key} must be >= {minimum}, got {value}"
                    )

        slo = SLOSpec.from_dict(data.get("slo", {}))
        warm_start = data.get("warm_start", False)
        if not isinstance(warm_start, bool):
            raise ScenarioError(
                f"scenario warm_start must be a boolean, got {warm_start!r}"
            )

        phases_data = data.get("phases")
        if not isinstance(phases_data, (list, tuple)) or not phases_data:
            raise ScenarioError("scenario needs a non-empty phases list")
        phases = tuple(
            PhaseSpec.from_dict(entry, index)
            for index, entry in enumerate(phases_data)
        )

        spec = cls(
            name=name,
            devices=devices,
            workload=workload,
            drift_models=tuple(drift_models),
            drift_seed=drift_seed,
            cluster=tuple(sorted(cluster_data.items())),
            slo=slo,
            warm_start=warm_start,
            phases=phases,
        )
        spec._cross_validate()
        return spec

    def _cross_validate(self) -> None:
        """Whole-document checks: every request the timeline can generate
        must be a valid compile request, and drift models must parse."""
        for model in self.drift_models:
            try:
                parse_drift_model(model)
            except ValueError as error:
                raise ScenarioError(str(error)) from error
        strategy_sets = [self.workload.strategies]
        mappings = [self.workload.mapping]
        for phase in self.phases:
            if phase.kind == "canary":
                if phase.candidate_strategies is not None:
                    strategy_sets.append(phase.candidate_strategies)
                if phase.candidate_mapping is not None:
                    mappings.append(phase.candidate_mapping)
        for device in self.devices:
            for circuit in self.workload.circuits:
                for strategies in strategy_sets:
                    for mapping in mappings:
                        try:
                            CompileRequest(
                                circuit=circuit,
                                topology=device.topology,
                                device_seed=device.device_seed,
                                strategies=strategies,
                                mapping=mapping,
                                seed=self.workload.seed,
                                coherence_us=device.coherence_us,
                                gate_ns=device.gate_ns,
                            )
                        except RequestError as error:
                            raise ScenarioError(str(error)) from error

    @classmethod
    def load(cls, path: str | Path) -> "ScenarioSpec":
        """Parse a scenario file, raising readable :class:`ScenarioError`."""
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as error:
            raise ScenarioError(f"cannot read scenario {path}: {error}") from error
        try:
            data = json.loads(text)
        except ValueError as error:
            raise ScenarioError(f"scenario {path} is not valid JSON: {error}") from error
        return cls.from_dict(data)

    def cluster_kwargs(self) -> dict:
        """The ``cluster`` block as :class:`ClusterConfig` keyword overrides."""
        return dict(self.cluster)

    def to_dict(self) -> dict:
        """Normalized echo of the scenario (round-trips through from_dict)."""
        return {
            "name": self.name,
            "devices": [device.to_dict() for device in self.devices],
            "workload": self.workload.to_dict(),
            "drift": {"models": list(self.drift_models), "seed": self.drift_seed},
            "cluster": dict(self.cluster),
            "slo": self.slo.to_dict(),
            "warm_start": self.warm_start,
            "phases": [phase.to_dict() for phase in self.phases],
        }
