"""Scenario execution: one long-lived cluster under drift, traffic and chaos.

:class:`ScenarioRunner` owns the control-plane side of a run:

* an in-process :class:`~repro.cluster.frontend.ClusterFrontend` over a
  shared on-disk store, serving the scenario's live traffic;
* one :class:`~repro.drift.clock.DriftClock` per served device -- each tick
  renders an absolute calibration payload, fans it out coherently
  (quiesce -> apply -> ack) with a **pre-warm spec** attached, so shards
  rebuild targets and programs for the new fingerprint off the request
  path before the swap;
* **stale-serve detection**: the clock's post-tick fingerprint is the
  expected one; any response to a request *sent after* a tick's ack that
  still carries a retired fingerprint is counted as a stale serve (the
  zero-tolerance coherence SLO).  Send time, not receive time: a response
  to a pre-ack request may legitimately carry the old fingerprint;
* **canarying**: a traffic fraction is diverted to a candidate
  strategy/mapping, then both configurations are scored on *true* delivered
  fidelity (:func:`~repro.drift.sweep.drifted_circuit_fidelity` against the
  drifted shadows) and the candidate is promoted or rolled back
  (:func:`decide_canary`);
* **chaos probes**: shard SIGKILL, calibration storms, on-disk cache
  corruption -- each run under live traffic, each expected to cost zero
  dropped requests.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import replace
from pathlib import Path

from repro.cluster.frontend import ClusterConfig, ClusterFrontend
from repro.compiler.pipeline.dispatch import BatchDispatcher, DispatchContext
from repro.drift.clock import DriftClock
from repro.drift.sweep import drifted_circuit_fidelity
from repro.fleet.cache import TargetCache
from repro.fleet.devices import device_fingerprint, make_device
from repro.fleet.spec import TopologySpec
from repro.fleet.sweep import build_circuit
from repro.ops.report import PhaseReport, ScenarioReport
from repro.ops.scenario import DeviceSpec, PhaseSpec, ScenarioSpec, WorkloadSpec
from repro.ops.traffic import TrafficRecord, TrafficStats, build_plan, run_traffic
from repro.service.hotcache import TargetHotCache


def decide_canary(
    baseline: float | None, candidate: float | None, tolerance: float
) -> str:
    """Promote or roll back a canary from the two fidelity scores.

    Promote iff the candidate's delivered fidelity is within ``tolerance``
    of (or better than) the baseline's; anything unmeasurable rolls back --
    a canary that produced no evidence must never be promoted.
    """
    if baseline is None or candidate is None:
        return "rollback"
    return "promote" if candidate >= baseline - tolerance else "rollback"


class ScenarioRunner:
    """Executes one :class:`~repro.ops.scenario.ScenarioSpec` end to end.

    ``store_dir`` is the shared on-disk store for targets and programs
    (required: the corrupt-cache probe and warm starts act on it).  ``log``
    is an optional callable for progress lines (the CLI passes ``print``).
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        store_dir: str | Path,
        log=None,
    ):
        self.spec = spec
        self.store_dir = Path(store_dir)
        self.log = log or (lambda _line: None)
        self.workload: WorkloadSpec = spec.workload
        self.frontend: ClusterFrontend | None = None
        self.clocks: dict[tuple, DriftClock] = {}
        self.device_specs: dict[tuple, DeviceSpec] = {}
        #: fingerprint -> monotonic time its retiring calibration acked.
        self.retired: dict[str, float] = {}
        #: device key -> the fingerprint every shard must serve right now.
        self.expected: dict[tuple, str] = {}
        self.drift_ticks_acked = 0
        self.drift_ticks_total = 0
        # Evaluation harness for true-fidelity scoring on the drifted
        # shadows; shares the on-disk store, so targets the shards already
        # built deserialize instead of rebuilding.
        self._eval_targets = TargetHotCache(capacity=32, cache_dir=self.store_dir)
        self._eval_dispatcher = BatchDispatcher(executor="thread", max_workers=None)

    # -- lifecycle ------------------------------------------------------------

    async def run(self) -> ScenarioReport:
        """Execute every phase in order; returns the judged report."""
        started = time.perf_counter()
        self._init_fleet()
        if self.spec.warm_start:
            await asyncio.get_running_loop().run_in_executor(None, self._warm_store)
        config = ClusterConfig(
            store_dir=str(self.store_dir), **self.spec.cluster_kwargs()
        )
        self.frontend = ClusterFrontend(config)
        await self.frontend.start()
        report = ScenarioReport(scenario=self.spec.to_dict())
        try:
            for index, phase in enumerate(self.spec.phases):
                self.log(f"phase {index + 1}/{len(self.spec.phases)}: {phase.label}")
                phase_report = await self._run_phase(phase)
                phase_report.judge(self.spec.slo.merged(phase.slo))
                report.phases.append(phase_report)
                self.log(
                    f"  {'ok' if phase_report.ok else 'FAIL'}: "
                    f"{phase_report.traffic.requests} requests, "
                    f"{phase_report.traffic.dropped} dropped, "
                    f"{phase_report.traffic.stale_serves} stale"
                )
        finally:
            report.cluster_metrics = await self.frontend.stop()
            self._eval_dispatcher.close()
        report.duration_s = time.perf_counter() - started
        return report

    def _init_fleet(self) -> None:
        """Build each served device's base state and its drift clock."""
        for device_spec in self.spec.devices:
            device = make_device(
                TopologySpec.parse(device_spec.topology),
                device_spec.device_seed,
                coherence_time_us=device_spec.coherence_us,
                single_qubit_gate_ns=device_spec.gate_ns,
            )
            key = (
                device_spec.topology,
                device_spec.device_seed,
                device_spec.coherence_us,
                device_spec.gate_ns,
            )
            clock = DriftClock(
                device,
                list(self.spec.drift_models),
                drift_seed=self.spec.drift_seed + len(self.clocks),
            )
            self.clocks[key] = clock
            self.device_specs[key] = device_spec
            self.expected[key] = clock.fingerprint

    def _warm_store(self) -> None:
        """Fleet-cache pre-warm: build the working set before traffic starts."""
        store = TargetCache(self.store_dir)
        for key, clock in self.clocks.items():
            outcome = store.warm(
                clock.shadow, self.workload.strategies, self.expected[key]
            )
            self.log(f"  warm {key[0]}/{key[1]}: {outcome}")

    # -- phase execution ------------------------------------------------------

    async def _run_phase(self, phase: PhaseSpec) -> PhaseReport:
        report = PhaseReport(name=phase.label, kind=phase.kind)
        started = time.perf_counter()
        if phase.kind == "traffic":
            await self._run_traffic_phase(phase, report)
        elif phase.kind == "drift":
            await self._run_drift_phase(phase, report)
        elif phase.kind == "canary":
            await self._run_canary_phase(phase, report)
        elif phase.kind == "chaos":
            await self._run_chaos_phase(phase, report)
        report.duration_s = time.perf_counter() - started
        return report

    async def _run_traffic_phase(
        self, phase: PhaseSpec, report: PhaseReport
    ) -> None:
        """Sustained traffic, optionally with drift ticks landing mid-load."""
        traffic = asyncio.create_task(self._traffic(phase.repeats))
        acked = 0
        for _ in range(phase.drift_ticks):
            await asyncio.sleep(0.05)
            acked += await self._tick_all()
        records = await traffic
        report.traffic = TrafficStats(records)
        if phase.drift_ticks:
            total = phase.drift_ticks * len(self.clocks)
            report.drift = {"ticks": total, "coherent_acks": acked}
            report.verdicts["coherent_acks"] = {
                "ok": acked == total, "value": acked, "limit": total,
            }

    async def _run_drift_phase(self, phase: PhaseSpec, report: PhaseReport) -> None:
        """Pure drift ticks: every device advances ``ticks`` epochs."""
        acked = 0
        for _ in range(phase.ticks):
            acked += await self._tick_all()
        total = phase.ticks * len(self.clocks)
        report.drift = {"ticks": total, "coherent_acks": acked}
        report.verdicts["coherent_acks"] = {
            "ok": acked == total, "value": acked, "limit": total,
        }

    async def _run_canary_phase(self, phase: PhaseSpec, report: PhaseReport) -> None:
        """Divert a traffic fraction to the candidate, score, decide."""
        assert self.frontend is not None
        self.frontend.set_canary(
            phase.fraction,
            strategies=phase.candidate_strategies,
            mapping=phase.candidate_mapping,
        )
        try:
            records = await self._traffic(phase.repeats)
        finally:
            self.frontend.clear_canary()
        report.traffic = TrafficStats(records)
        loop = asyncio.get_running_loop()
        candidate_strategies = phase.candidate_strategies or self.workload.strategies
        candidate_mapping = phase.candidate_mapping or self.workload.mapping
        baseline_score = await loop.run_in_executor(
            None, self._true_fidelity, self.workload.strategies,
            self.workload.mapping,
        )
        candidate_score = await loop.run_in_executor(
            None, self._true_fidelity, candidate_strategies, candidate_mapping
        )
        decision = decide_canary(baseline_score, candidate_score, phase.tolerance)
        if decision == "promote":
            self.workload = replace(
                self.workload,
                strategies=tuple(candidate_strategies),
                mapping=candidate_mapping,
            )
        report.canary = {
            "fraction": phase.fraction,
            "candidate_strategies": (
                list(phase.candidate_strategies)
                if phase.candidate_strategies is not None
                else None
            ),
            "candidate_mapping": phase.candidate_mapping,
            "observed_fidelity": {
                "baseline": report.traffic.fidelity_mean(canary=False),
                "canary": report.traffic.fidelity_mean(canary=True),
            },
            "true_fidelity": {
                "baseline": baseline_score,
                "candidate": candidate_score,
            },
            "tolerance": phase.tolerance,
            "decision": decision,
        }
        self.log(
            f"  canary {decision}: baseline={baseline_score} "
            f"candidate={candidate_score} tolerance={phase.tolerance}"
        )

    async def _run_chaos_phase(self, phase: PhaseSpec, report: PhaseReport) -> None:
        assert self.frontend is not None
        if phase.probe == "shard_kill":
            traffic = asyncio.create_task(self._traffic(phase.repeats))
            await asyncio.sleep(0.05)
            victim = phase.shard or next(iter(self.frontend.lanes))
            outcome = self.frontend.kill_shard(victim)
            records = await traffic
            rejoined = await self._await_rejoin(victim)
            report.chaos = {"probe": "shard_kill", **outcome, "rejoined": rejoined}
        elif phase.probe == "calibration_storm":
            traffic = asyncio.create_task(self._traffic(phase.repeats))
            acked = 0
            for _ in range(phase.ticks):
                acked += await self._tick_all()
            records = await traffic
            total = phase.ticks * len(self.clocks)
            report.chaos = {
                "probe": "calibration_storm",
                "ticks": total,
                "coherent_acks": acked,
            }
            report.verdicts["coherent_acks"] = {
                "ok": acked == total, "value": acked, "limit": total,
            }
        elif phase.probe == "corrupt_cache":
            corrupted = await asyncio.get_running_loop().run_in_executor(
                None, self._corrupt_store, phase.entries
            )
            records = await self._traffic(phase.repeats)
            report.chaos = {"probe": "corrupt_cache", "entries_corrupted": corrupted}
        else:  # pragma: no cover - parse-time rejected
            raise AssertionError(f"unknown probe {phase.probe!r}")
        report.traffic = TrafficStats(records)

    # -- the moving parts -----------------------------------------------------

    async def _traffic(self, repeats: int) -> list[TrafficRecord]:
        """One traffic wave at the current workload; stale-marks the records."""
        assert self.frontend is not None
        plan = build_plan(self.spec.devices, self.workload, repeats)
        records = await run_traffic(
            self.frontend.address, plan, concurrency=self.workload.concurrency
        )
        for record in records:
            retired_at = self.retired.get(record.fingerprint)
            record.stale = (
                record.ok
                and retired_at is not None
                and record.started_at > retired_at
            )
        return records

    async def _tick_all(self) -> int:
        """One drift tick on every device's clock; returns coherent acks."""
        acked = 0
        for key in self.clocks:
            if await self._drift_tick(key):
                acked += 1
        return acked

    async def _drift_tick(self, key: tuple) -> bool:
        """Advance one device an epoch and fan the calibration out.

        The payload carries a pre-warm spec for the current workload, so
        every shard rebuilds the device's targets and re-compiles the
        workload circuits for the *new* fingerprint before its swap -- the
        recalibration cost lands off the request path.  Only after the
        coherent ack is the old fingerprint marked retired.
        """
        assert self.frontend is not None
        clock = self.clocks[key]
        device_spec = self.device_specs[key]
        old_fingerprint = clock.fingerprint
        payload, _events = clock.tick()
        message = {
            "topology": device_spec.topology,
            "device_seed": device_spec.device_seed,
            "coherence_us": device_spec.coherence_us,
            "gate_ns": device_spec.gate_ns,
            **payload,
            "prewarm": {
                "circuits": list(self.workload.circuits),
                "strategies": list(self.workload.strategies),
                "mapping": self.workload.mapping,
                "seed": self.workload.seed,
            },
        }
        envelope = await self.frontend.fan_out_calibration(message)
        coherent = bool(envelope.get("ok"))
        self.drift_ticks_total += 1
        if coherent:
            self.drift_ticks_acked += 1
        self.retired[old_fingerprint] = time.monotonic()
        self.expected[key] = clock.fingerprint
        return coherent

    async def _await_rejoin(self, shard: str, timeout_s: float = 30.0) -> bool:
        """Wait for a killed shard's supervisor to bring it back on the ring.

        Verified by an actual wire ``ping``, not the process flag: right
        after a SIGKILL there is a window where the supervisor has not yet
        observed the death, the shard is not marked down, and the process
        object still reads alive -- trusting that would let the next phase
        fan a calibration out to a corpse.
        """
        assert self.frontend is not None
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if shard not in self.frontend.down_shards and (
                await self.frontend.ping_shard(shard)
            ):
                return True
            await asyncio.sleep(0.05)
        return False

    def _corrupt_store(self, entries: int) -> int:
        """Truncate/garble up to ``entries`` on-disk cache files.

        Hits both the target store and the program store.  The cache layers
        treat unreadable entries as misses (re-validated field by field on
        load), so the expected blast radius is rebuild cost, never a wrong
        or failed response.
        """
        victims = sorted(self.store_dir.glob("*.json"))
        victims += sorted((self.store_dir / "programs").glob("*.json"))
        corrupted = 0
        for path in victims[:entries]:
            path.write_text('{"corrupt": tru')
            corrupted += 1
        return corrupted

    def _true_fidelity(self, strategies, mapping: str) -> float | None:
        """Mean *true* fidelity of the workload under one configuration.

        Compiles the workload circuits against each device's drifted shadow
        (the runner-side source of truth for current calibration) and scores
        with :func:`drifted_circuit_fidelity` -- the same miscalibration-
        aware measure the drift sweeps report.  Runs on an executor thread.
        """
        scores: list[float] = []
        for clock in self.clocks.values():
            shadow = clock.shadow
            fingerprint = device_fingerprint(shadow)
            targets = {}
            for strategy in strategies:
                target, _source = self._eval_targets.get(
                    shadow, strategy, fingerprint
                )
                targets[strategy] = target
            context = DispatchContext(
                shadow,
                targets,
                mapping=mapping,
                seed=self.workload.seed,
                key=(fingerprint, tuple(strategies), mapping, self.workload.seed),
            )
            circuits = [build_circuit(name) for name in self.workload.circuits]
            for compiled in self._eval_dispatcher.dispatch(circuits, context):
                for strategy, one in compiled.items():
                    scores.append(
                        drifted_circuit_fidelity(one, shadow, targets[strategy])
                    )
        return sum(scores) / len(scores) if scores else None


async def run_scenario(
    spec: ScenarioSpec, store_dir: str | Path, log=None
) -> ScenarioReport:
    """Execute one scenario; the coroutine form of ``python -m repro.ops run``."""
    return await ScenarioRunner(spec, store_dir, log=log).run()
