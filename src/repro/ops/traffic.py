"""Live traffic driving for scenario phases.

Unlike the service load generator (:mod:`repro.service.loadgen`), which
reports only aggregate phase numbers, the ops runner needs **per-response
evidence**: when each request was *sent* (stale-fingerprint detection is
send-time based -- see :class:`~repro.ops.runner.ScenarioRunner`), which
calibration fingerprint and cache layer served it, the delivered fidelity,
and whether the cluster diverted it to a canary configuration.
:func:`run_traffic` drives a request plan over N pipelined wire connections
and returns one :class:`TrafficRecord` per request; :class:`TrafficStats`
folds a record list into the phase-report document.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

from repro.service.metrics import percentiles
from repro.service.net import ServiceClient


@dataclass
class TrafficRecord:
    """What one request observed, as evidence for the SLO verdicts."""

    circuit: str
    tenant: str
    started_at: float = 0.0
    latency_ms: float = 0.0
    ok: bool = False
    error: str | None = None
    sheds: int = 0
    fingerprint: str = ""
    fidelity: float | None = None
    program_source: str = ""
    canary: bool = False
    stale: bool = False


@dataclass
class TrafficStats:
    """Aggregates of one record list (the phase report's ``traffic`` block)."""

    records: list[TrafficRecord] = field(default_factory=list)

    @property
    def requests(self) -> int:
        return len(self.records)

    @property
    def ok(self) -> int:
        return sum(1 for r in self.records if r.ok)

    @property
    def dropped(self) -> int:
        """Accepted requests that never completed ok (the zero-drop SLO)."""
        return self.requests - self.ok

    @property
    def sheds(self) -> int:
        return sum(r.sheds for r in self.records)

    @property
    def stale_serves(self) -> int:
        return sum(1 for r in self.records if r.stale)

    @property
    def latencies(self) -> list[float]:
        return [r.latency_ms for r in self.records if r.ok]

    def fidelity_mean(self, canary: bool | None = None) -> float | None:
        """Mean delivered fidelity over ok records; ``canary`` filters the
        population (None = all, True = canaried, False = baseline)."""
        values = [
            r.fidelity
            for r in self.records
            if r.ok and r.fidelity is not None
            and (canary is None or r.canary == canary)
        ]
        return sum(values) / len(values) if values else None

    def to_dict(self) -> dict:
        sources: dict[str, int] = {}
        for record in self.records:
            if record.ok:
                sources[record.program_source] = (
                    sources.get(record.program_source, 0) + 1
                )
        return {
            "requests": self.requests,
            "ok": self.ok,
            "dropped": self.dropped,
            "shed_retries": self.sheds,
            "stale_serves": self.stale_serves,
            "canaried": sum(1 for r in self.records if r.canary),
            "latency_ms": percentiles(self.latencies),
            "fidelity_mean": self.fidelity_mean(),
            "program_sources": sources,
        }


def build_plan(devices, workload, repeats: int) -> list[tuple[dict, str]]:
    """The deterministic request plan: circuits x devices, tenants assigned
    round-robin, repeated ``repeats`` times (repeat traffic is what
    exercises the warm program/target paths)."""
    plan: list[tuple[dict, str]] = []
    tenant_index = 0
    for _ in range(repeats):
        for device in devices:
            for circuit in workload.circuits:
                tenant = workload.tenants[tenant_index % len(workload.tenants)]
                tenant_index += 1
                plan.append(
                    (
                        {
                            "circuit": circuit,
                            "topology": device.topology,
                            "device_seed": device.device_seed,
                            "coherence_us": device.coherence_us,
                            "gate_ns": device.gate_ns,
                            "strategies": list(workload.strategies),
                            "mapping": workload.mapping,
                            "seed": workload.seed,
                        },
                        tenant,
                    )
                )
    return plan


def _fold_response(record: TrafficRecord, envelope: dict) -> None:
    """Interpret one terminal (non-shed) response envelope into a record."""
    if envelope.get("ok"):
        result = envelope.get("result") or {}
        record.ok = True
        record.fingerprint = str(result.get("fingerprint", ""))
        record.program_source = str(result.get("program_source", ""))
        cluster = result.get("cluster") or {}
        record.canary = bool(cluster.get("canary", False))
        results = result.get("results") or {}
        fidelities = [
            one.get("fidelity")
            for one in results.values()
            if isinstance(one, dict) and one.get("fidelity") is not None
        ]
        if fidelities:
            record.fidelity = sum(fidelities) / len(fidelities)
    else:
        record.error = str(envelope.get("error", "unknown error"))


async def run_traffic(
    address: tuple[str, int],
    plan: list[tuple[dict, str]],
    concurrency: int = 4,
    shed_retries: int = 5,
) -> list[TrafficRecord]:
    """Fire a request plan at a cluster endpoint; one record per request.

    ``concurrency`` wire connections each pipeline their slice of the plan
    in order.  Shed responses honour the cluster's ``retry_after_ms`` advice
    up to ``shed_retries`` times before counting as an error -- matching how
    a well-behaved client treats admission control.
    """
    host, port = address
    records = [
        TrafficRecord(circuit=message["circuit"], tenant=tenant)
        for message, tenant in plan
    ]

    async def worker(indices: list[int]) -> None:
        client = ServiceClient(host, port, retries=2)
        await client.connect()
        try:
            for index in indices:
                message, tenant = plan[index]
                record = records[index]
                record.started_at = time.monotonic()
                started = time.perf_counter()
                for _attempt in range(shed_retries + 1):
                    try:
                        envelope = await client.request(
                            {"op": "compile", "tenant": tenant, **message}
                        )
                    except (ConnectionError, OSError, asyncio.IncompleteReadError) as error:
                        record.error = f"connection lost: {error}"
                        break
                    if envelope.get("shed"):
                        record.sheds += 1
                        delay_ms = float(envelope.get("retry_after_ms", 25.0))
                        await asyncio.sleep(delay_ms / 1000.0)
                        # The retry is a new submission: reset the send time
                        # so stale detection judges the request actually
                        # admitted, not the shed attempt.
                        record.started_at = time.monotonic()
                        continue
                    _fold_response(record, envelope)
                    break
                else:
                    record.error = f"shed {record.sheds} times; retries exhausted"
                record.latency_ms = (time.perf_counter() - started) * 1000.0
        finally:
            await client.close()

    indices = list(range(len(plan)))
    slices = [indices[i::concurrency] for i in range(concurrency)]
    await asyncio.gather(*(worker(chunk) for chunk in slices if chunk))
    return records
