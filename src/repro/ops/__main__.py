"""Command-line entry point for the continuous-operation control plane.

Two subcommands::

    # Parse + cross-validate a scenario; echo the normalized spec as JSON.
    python -m repro.ops validate benchmarks/scenarios/smoke.json

    # Execute a scenario; emit the ScenarioReport document as JSON.
    python -m repro.ops run benchmarks/scenarios/smoke.json \
        --store-dir .ops-store --output report.json

Exit codes: ``0`` -- scenario ran and every SLO verdict passed; ``1`` --
scenario ran but at least one SLO verdict failed (the report says which);
``2`` -- malformed scenario or arguments, with a one-line ``error: ...``
message and never a traceback -- the same contract as every other CLI in
this repo.  The report schema is documented in docs/ops.md and docs/cli.md.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
from pathlib import Path

from repro.ops.runner import run_scenario
from repro.ops.scenario import ScenarioError, ScenarioSpec


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.ops",
        description="Scenario-driven control plane: live traffic over a "
        "drifting fleet, with SLO verdicts.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser(
        "run", help="execute a scenario and emit its ScenarioReport JSON"
    )
    run.add_argument("scenario", help="path to the scenario JSON file")
    run.add_argument(
        "--store-dir",
        default=None,
        help="shared on-disk target/program store (default: a fresh "
        "temporary directory, discarded after the run)",
    )
    run.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="also write the report JSON to PATH",
    )
    run.add_argument(
        "--quiet",
        action="store_true",
        help="suppress progress lines (the report JSON still prints)",
    )

    validate = commands.add_parser(
        "validate", help="parse and cross-validate a scenario without running it"
    )
    validate.add_argument("scenario", help="path to the scenario JSON file")
    return parser


def _run(args: argparse.Namespace) -> int:
    spec = ScenarioSpec.load(args.scenario)
    log = (lambda _line: None) if args.quiet else (
        lambda line: print(line, file=sys.stderr)
    )
    if args.store_dir is not None:
        store_dir = Path(args.store_dir)
        store_dir.mkdir(parents=True, exist_ok=True)
        report = asyncio.run(run_scenario(spec, store_dir, log=log))
    else:
        with tempfile.TemporaryDirectory(prefix="repro-ops-") as scratch:
            report = asyncio.run(run_scenario(spec, scratch, log=log))
    document = report.to_dict()
    print(json.dumps(document, indent=2, sort_keys=True))
    if args.output:
        report.write_json(args.output)
    if not args.quiet:
        print(report.format_summary(), file=sys.stderr)
    return 0 if report.ok else 1


def _validate(args: argparse.Namespace) -> int:
    spec = ScenarioSpec.load(args.scenario)
    print(json.dumps(spec.to_dict(), indent=2, sort_keys=True))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _run(args)
        return _validate(args)
    except (ScenarioError, ValueError, ConnectionError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
