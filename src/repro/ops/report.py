"""Scenario reports: per-phase SLO verdicts plus run-wide aggregation.

A verdict is ``{"ok": bool, "value": observed, "limit": configured}`` --
always carrying the evidence next to the decision, so a failing nightly run
is diagnosable from the JSON artifact alone.  :meth:`ScenarioReport.to_dict`
is the machine-readable document ``python -m repro.ops run`` emits;
:meth:`ScenarioReport.format_summary` renders the human one-screen view.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.ops.scenario import SLOSpec
from repro.ops.traffic import TrafficStats
from repro.service.metrics import percentiles


def _verdict(ok: bool, value, limit) -> dict:
    return {"ok": bool(ok), "value": value, "limit": limit}


@dataclass
class PhaseReport:
    """One executed phase: its traffic evidence and SLO verdicts."""

    name: str
    kind: str
    duration_s: float = 0.0
    traffic: TrafficStats = field(default_factory=TrafficStats)
    drift: dict | None = None
    canary: dict | None = None
    chaos: dict | None = None
    verdicts: dict[str, dict] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when every verdict in the phase passed."""
        return all(v["ok"] for v in self.verdicts.values())

    def judge(self, slo: SLOSpec) -> None:
        """Populate :attr:`verdicts` from the traffic evidence and ``slo``.

        Limits set to ``None`` are skipped; the coherence and drop limits
        always apply (their defaults are the zero-tolerance ones).  Phases
        that served no traffic only get the coherence/drop verdicts --
        a fidelity floor over zero requests would pass vacuously and read
        as a green light.
        """
        stats = self.traffic
        self.verdicts["stale_serves"] = _verdict(
            stats.stale_serves <= slo.max_stale_serves,
            stats.stale_serves,
            slo.max_stale_serves,
        )
        self.verdicts["dropped"] = _verdict(
            stats.dropped <= slo.max_dropped, stats.dropped, slo.max_dropped
        )
        if stats.requests == 0:
            return
        if slo.fidelity_floor is not None:
            fidelity = stats.fidelity_mean()
            self.verdicts["fidelity_floor"] = _verdict(
                fidelity is not None and fidelity >= slo.fidelity_floor,
                fidelity,
                slo.fidelity_floor,
            )
        tails = percentiles(stats.latencies)
        for name, key, limit in (
            ("latency_p95_ms", "p95", slo.latency_p95_ms),
            ("latency_p99_ms", "p99", slo.latency_p99_ms),
        ):
            if limit is None:
                continue
            observed = tails[key] if stats.latencies else None
            self.verdicts[name] = _verdict(
                observed is not None and observed <= limit, observed, limit
            )

    def to_dict(self) -> dict:
        doc = {
            "name": self.name,
            "kind": self.kind,
            "ok": self.ok,
            "duration_s": self.duration_s,
            "traffic": self.traffic.to_dict(),
            "slo": self.verdicts,
        }
        if self.drift is not None:
            doc["drift"] = self.drift
        if self.canary is not None:
            doc["canary"] = self.canary
        if self.chaos is not None:
            doc["chaos"] = self.chaos
        return doc


@dataclass
class ScenarioReport:
    """The whole run: phase reports plus the final cluster metrics."""

    scenario: dict
    phases: list[PhaseReport] = field(default_factory=list)
    cluster_metrics: dict | None = None
    duration_s: float = 0.0

    @property
    def ok(self) -> bool:
        """True when every phase's every SLO verdict passed."""
        return all(phase.ok for phase in self.phases)

    def totals(self) -> dict:
        """Run-wide counters (summed over phases)."""
        return {
            "requests": sum(p.traffic.requests for p in self.phases),
            "ok": sum(p.traffic.ok for p in self.phases),
            "dropped": sum(p.traffic.dropped for p in self.phases),
            "stale_serves": sum(p.traffic.stale_serves for p in self.phases),
            "shed_retries": sum(p.traffic.sheds for p in self.phases),
            "phases": len(self.phases),
            "phases_failed": sum(1 for p in self.phases if not p.ok),
        }

    def to_dict(self) -> dict:
        """The machine-readable report document."""
        return {
            "scenario": self.scenario,
            "ok": self.ok,
            "duration_s": self.duration_s,
            "totals": self.totals(),
            "phases": [phase.to_dict() for phase in self.phases],
            "cluster_metrics": self.cluster_metrics,
        }

    def write_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))
        return path

    def format_summary(self) -> str:
        """One-screen human rendering of the verdict table."""
        lines = [
            f"scenario {self.scenario.get('name', '?')}: "
            f"{'PASS' if self.ok else 'FAIL'} "
            f"({self.totals()['requests']} requests, "
            f"{self.duration_s:.1f}s)"
        ]
        for phase in self.phases:
            mark = "ok " if phase.ok else "FAIL"
            stats = phase.traffic
            fidelity = stats.fidelity_mean()
            lines.append(
                f"  [{mark}] {phase.name:<24} {stats.requests:>4} req  "
                f"drop={stats.dropped} stale={stats.stale_serves}"
                + (f"  fid={fidelity:.4f}" if fidelity is not None else "")
            )
            for check, verdict in phase.verdicts.items():
                if not verdict["ok"]:
                    lines.append(
                        f"         {check}: value={verdict['value']!r} "
                        f"limit={verdict['limit']!r}"
                    )
        return "\n".join(lines)
