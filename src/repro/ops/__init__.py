"""The continuous-operation control plane.

``repro.ops`` fuses the cluster, service, drift and fleet subsystems into
one long-lived run driven by a declarative **scenario**: a fleet of devices
drifts on independent :class:`~repro.drift.clock.DriftClock` timelines while
live traffic is served through a sharded
:class:`~repro.cluster.frontend.ClusterFrontend`, recalibration (with cache
pre-warming) happens off the request path, candidate strategies are canaried
against live fidelity, and chaos probes (shard SIGKILL, cache corruption,
calibration storms) exercise the resilience machinery -- with fidelity /
latency / coherence SLOs asserted per phase and aggregated into a
machine-readable :class:`~repro.ops.report.ScenarioReport`.

Run one from the shell::

    python -m repro.ops run benchmarks/scenarios/smoke.json

or in-process::

    from repro.ops import ScenarioSpec, run_scenario
    report = await run_scenario(ScenarioSpec.load("scenario.json"))
    assert report.ok

See docs/ops.md for the scenario schema, SLO semantics, canary promotion
rules and the chaos probe catalog.
"""

from repro.ops.report import PhaseReport, ScenarioReport
from repro.ops.runner import ScenarioRunner, decide_canary, run_scenario
from repro.ops.scenario import (
    CHAOS_PROBES,
    PHASE_KINDS,
    DeviceSpec,
    PhaseSpec,
    ScenarioError,
    ScenarioSpec,
    SLOSpec,
    WorkloadSpec,
)
from repro.ops.traffic import TrafficRecord, TrafficStats

__all__ = [
    "CHAOS_PROBES",
    "PHASE_KINDS",
    "DeviceSpec",
    "PhaseReport",
    "PhaseSpec",
    "ScenarioError",
    "ScenarioReport",
    "ScenarioRunner",
    "ScenarioSpec",
    "SLOSpec",
    "TrafficRecord",
    "TrafficStats",
    "WorkloadSpec",
    "decide_canary",
    "run_scenario",
]
