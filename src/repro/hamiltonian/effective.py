"""Fast effective model of the parametrically driven entangler.

The full three-mode Hamiltonian of :mod:`repro.hamiltonian.transmon` is
expensive to integrate for every pair of a 100-qubit device, so -- exactly as
the paper does -- the case study uses an effective two-qubit model that keeps
the essential physics:

* the parametric drive activates an XY (iSWAP-like) exchange between the two
  qubits whose rate grows linearly with the drive amplitude ``xi`` (Fig. 5:
  doubling the amplitude doubles the speed of the trajectory);
* for drive amplitudes beyond the strong-drive threshold (0.01 Phi0 in the
  paper) higher-order terms divert part of the interaction into a coherent ZZ
  component and slightly suppress the XY rate, so the Cartan trajectory
  *deviates* from the standard XY line -- these are the nonstandard
  trajectories from which Criteria 1 and 2 select basis gates;
* an optional static ZZ crosstalk term reproduces the kind of systematic
  offset seen in the measured trajectories of Fig. 2 even at low drive.

The model Hamiltonian is ``H = J/2 (XX + YY) + K/2 ZZ`` (rad/ns); since the
three terms commute, both the unitary and the Cartan coordinates have closed
forms, which keeps device-scale trajectory generation cheap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.linalg import expm

from repro.gates.constants import PAULI_X, PAULI_Y, PAULI_Z
from repro.weyl.cartan import canonicalize_coordinates

_XX = np.kron(PAULI_X, PAULI_X)
_YY = np.kron(PAULI_Y, PAULI_Y)
_ZZ = np.kron(PAULI_Z, PAULI_Z)

#: Drive amplitude (in units of Phi0) used for the baseline trajectories.
BASELINE_DRIVE_AMPLITUDE = 0.005
#: Drive amplitude used for the fast nonstandard trajectories of the case study.
NONSTANDARD_DRIVE_AMPLITUDE = 0.04
#: Amplitude beyond which strong-drive effects become non-negligible (paper).
STRONG_DRIVE_THRESHOLD = 0.01


@dataclass
class EntanglerParameters:
    """Parameters of the effective entangler between one pair of qubits.

    Attributes:
        qubit_a_freq, qubit_b_freq: qubit frequencies in GHz; only their
            detuning enters the model (the exchange rate scales inversely
            with the detuning).
        drive_amplitude: entangling-pulse drive amplitude ``xi`` in units of
            the flux quantum Phi0.
        exchange_rate_reference: XY half-rate ``J`` (rad/ns) obtained at the
            reference amplitude and reference detuning.  The default value
            puts the baseline sqrt(iSWAP) at ~83 ns, matching Table I.
        reference_amplitude, reference_detuning: the operating point at which
            ``exchange_rate_reference`` is quoted.
        strong_drive_threshold: amplitude (Phi0) beyond which the coherent
            deviation terms switch on.
        zz_deviation_coeff: strength of the drive-induced ZZ component
            (dimensionless, per squared excess drive).
        xy_suppression_coeff: fractional suppression of the XY rate per
            squared excess drive.
        static_zz: residual always-on ZZ crosstalk in rad/ns (zero when the
            coupler is biased to the zero-ZZ point; nonzero values reproduce
            Fig. 2-style systematic offsets).
        deviation_scale: pair-specific multiplier on the strong-drive
            deviation, modelling fabrication variation.
    """

    qubit_a_freq: float = 3.2
    qubit_b_freq: float = 5.2
    drive_amplitude: float = BASELINE_DRIVE_AMPLITUDE
    exchange_rate_reference: float = np.pi / (4.0 * 83.04)
    reference_amplitude: float = BASELINE_DRIVE_AMPLITUDE
    reference_detuning: float = 2.0
    strong_drive_threshold: float = STRONG_DRIVE_THRESHOLD
    zz_deviation_coeff: float = 0.0128
    xy_suppression_coeff: float = 0.0039
    static_zz: float = 0.0
    deviation_scale: float = 1.0

    @property
    def detuning(self) -> float:
        """Qubit-qubit detuning in GHz."""
        return abs(self.qubit_a_freq - self.qubit_b_freq)


class EffectiveEntanglerModel:
    """Effective two-qubit model of one parametrically driven pair."""

    def __init__(self, params: EntanglerParameters | None = None):
        self.params = params if params is not None else EntanglerParameters()
        if self.params.drive_amplitude < 0:
            raise ValueError("drive amplitude must be non-negative")
        if self.params.detuning <= 0:
            raise ValueError("qubit frequencies must be distinct (far detuned)")

    # -- derived rates ------------------------------------------------------

    @property
    def linear_exchange_rate(self) -> float:
        """XY half-rate ``J_lin`` (rad/ns) before strong-drive suppression."""
        p = self.params
        amplitude_factor = p.drive_amplitude / p.reference_amplitude
        detuning_factor = p.reference_detuning / p.detuning
        return p.exchange_rate_reference * amplitude_factor * detuning_factor

    @property
    def drive_excess(self) -> float:
        """Dimensionless excess of the drive beyond the strong-drive threshold."""
        p = self.params
        return max(0.0, p.drive_amplitude / p.strong_drive_threshold - 1.0)

    @property
    def xy_rate(self) -> float:
        """Effective XY half-rate ``J`` (rad/ns) including suppression."""
        suppression = (
            self.params.xy_suppression_coeff
            * self.params.deviation_scale
            * self.drive_excess**2
        )
        return self.linear_exchange_rate * max(0.0, 1.0 - suppression)

    @property
    def zz_rate(self) -> float:
        """Effective ZZ rate ``K`` (rad/ns): drive-induced plus static."""
        induced = (
            self.linear_exchange_rate
            * self.params.zz_deviation_coeff
            * self.params.deviation_scale
            * self.drive_excess**2
        )
        return induced + self.params.static_zz

    @property
    def is_nonstandard(self) -> bool:
        """True when the trajectory deviates appreciably from the XY line."""
        return self.zz_rate > 1e-3 * max(self.xy_rate, 1e-12)

    # -- gate generation ----------------------------------------------------

    def hamiltonian(self) -> np.ndarray:
        """Effective two-qubit Hamiltonian (rad/ns) in the computational space."""
        return 0.5 * self.xy_rate * (_XX + _YY) + 0.5 * self.zz_rate * _ZZ

    def unitary(self, duration: float) -> np.ndarray:
        """Entangling unitary after driving for ``duration`` ns."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        return expm(-1j * self.hamiltonian() * duration)

    def coordinates(self, duration: float) -> tuple[float, float, float]:
        """Cartan coordinates of the gate at ``duration`` ns (closed form)."""
        tx = self.xy_rate * duration / np.pi
        ty = tx
        tz = self.zz_rate * duration / np.pi
        return canonicalize_coordinates((tx, ty, tz))

    def raw_coordinates(self, duration: float) -> tuple[float, float, float]:
        """Uncanonicalised coordinates ``(J t / pi, J t / pi, K t / pi)``."""
        tx = self.xy_rate * duration / np.pi
        tz = self.zz_rate * duration / np.pi
        return (tx, tx, tz)

    def trajectory_coordinates(self, durations: np.ndarray) -> np.ndarray:
        """Canonical coordinates for an array of durations (shape ``(n, 3)``)."""
        return np.array([self.coordinates(float(t)) for t in np.asarray(durations)])

    def duration_grid(
        self, max_duration: float, resolution: float = 1.0, min_duration: float = 0.0
    ) -> np.ndarray:
        """Durations sampled at the qubit-controller resolution (1 ns default).

        The paper notes that the controller resolution (~1 ns) sets the
        spacing of the measured trajectory points.
        """
        if max_duration <= min_duration:
            raise ValueError("max_duration must exceed min_duration")
        n = int(np.floor((max_duration - min_duration) / resolution)) + 1
        return min_duration + resolution * np.arange(n)

    def leakage_estimate(self, duration: float) -> float:
        """Phenomenological leakage estimate out of the computational space.

        Strong drives populate the second excited state of the coupler; the
        paper confirms the resulting leakage stays well below decoherence
        errors, which this estimate respects by construction.
        """
        excess = self.drive_excess
        return float(2e-5 * excess**2 * (1.0 - np.exp(-duration / 50.0)))

    # -- convenience constructors -------------------------------------------

    @classmethod
    def for_pair(
        cls,
        qubit_a_freq: float,
        qubit_b_freq: float,
        drive_amplitude: float,
        deviation_scale: float = 1.0,
        static_zz: float = 0.0,
    ) -> "EffectiveEntanglerModel":
        """Build a model for a specific pair of qubit frequencies."""
        params = EntanglerParameters(
            qubit_a_freq=qubit_a_freq,
            qubit_b_freq=qubit_b_freq,
            drive_amplitude=drive_amplitude,
            deviation_scale=deviation_scale,
            static_zz=static_zz,
        )
        return cls(params)
