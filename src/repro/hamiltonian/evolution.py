"""Time evolution of (time-dependent) Hamiltonians and subspace projection.

Implements step 4 of the paper's simulation protocol (Section VIII-B): evolve
the time-dependent Hamiltonian, project the propagator onto the computational
subspace to obtain the effective two-qubit unitary, and monitor leakage out of
the computational subspace.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np
from scipy.linalg import expm

from repro.gates.unitary import closest_unitary


def evolve_propagator(
    hamiltonian: Callable[[float], np.ndarray] | np.ndarray,
    duration: float,
    steps: int | None = None,
    max_step: float = 0.002,
) -> np.ndarray:
    """Propagator ``U(duration)`` of a (possibly time-dependent) Hamiltonian.

    For a constant Hamiltonian a single matrix exponential is used.  For a
    time-dependent Hamiltonian the evolution is split into short steps and the
    midpoint rule is applied on each (second-order accurate in the step size).

    Args:
        hamiltonian: either a constant Hermitian matrix or a callable
            ``t -> H(t)`` in rad/ns.
        duration: total evolution time in ns.
        steps: number of time steps; by default chosen so that each step is at
            most ``max_step`` ns.
        max_step: upper bound on the step size used when ``steps`` is None.
    """
    if duration < 0:
        raise ValueError("duration must be non-negative")
    if not callable(hamiltonian):
        h = np.asarray(hamiltonian, dtype=complex)
        return expm(-1j * h * duration)
    if duration == 0:
        dim = np.asarray(hamiltonian(0.0)).shape[0]
        return np.eye(dim, dtype=complex)
    if steps is None:
        steps = max(1, int(np.ceil(duration / max_step)))
    dt = duration / steps
    sample = np.asarray(hamiltonian(0.0), dtype=complex)
    propagator = np.eye(sample.shape[0], dtype=complex)
    for k in range(steps):
        t_mid = (k + 0.5) * dt
        h = np.asarray(hamiltonian(t_mid), dtype=complex)
        propagator = expm(-1j * h * dt) @ propagator
    return propagator


def project_to_computational_subspace(
    propagator: np.ndarray,
    indices: Sequence[int],
    renormalize: bool = True,
) -> tuple[np.ndarray, float]:
    """Project a full-space propagator onto a computational subspace.

    Args:
        propagator: the full propagator.
        indices: indices of the computational basis states within the full
            Hilbert space (e.g. |00>, |01>, |10>, |11> with the coupler in its
            ground state).
        renormalize: if True, return the closest unitary to the projected
            block; otherwise return the raw (sub-unitary) block.

    Returns:
        ``(u, leakage)`` where ``u`` is the effective gate on the subspace and
        ``leakage`` is ``1 - mean(column norms^2)`` of the raw block -- the
        average probability of leaving the computational subspace.
    """
    propagator = np.asarray(propagator, dtype=complex)
    idx = np.asarray(indices, dtype=int)
    block = propagator[np.ix_(idx, idx)]
    column_norms = np.sum(np.abs(block) ** 2, axis=0)
    leakage = float(1.0 - np.mean(column_norms))
    effective = closest_unitary(block) if renormalize else block
    return effective, max(leakage, 0.0)


def rotating_frame(
    propagator: np.ndarray, frame_hamiltonian: np.ndarray, duration: float
) -> np.ndarray:
    """Transform a lab-frame propagator into the frame of ``frame_hamiltonian``.

    ``U_rot = exp(+i H_frame t) U_lab``; used to strip single-qubit phase
    accumulation from the simulated entangler so that the remaining unitary
    isolates the two-qubit interaction.
    """
    frame = expm(1j * np.asarray(frame_hamiltonian, dtype=complex) * duration)
    return frame @ np.asarray(propagator, dtype=complex)
