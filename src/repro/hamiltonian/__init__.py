"""Hamiltonian models of the case-study entangling architecture (Section VIII).

Two levels of modelling are provided, mirroring the paper's own choice of a
"simplified effective Hamiltonian ... that models the device using fewer
parameters while still capturing all of the essential physics":

* :mod:`repro.hamiltonian.transmon` -- the three-mode model of Appendix A
  (two fixed-frequency transmons capacitively coupled through a tunable
  coupler, each kept to a few levels), used for spectrum diagnostics, static
  ZZ computation, zero-ZZ bias search and leakage validation.
* :mod:`repro.hamiltonian.effective` -- a fast two-qubit effective model of
  the parametrically activated interaction; drive amplitude sets the exchange
  rate linearly, and drive amplitudes beyond the strong-drive threshold
  introduce a coherent deviation of the Cartan trajectory (the "nonstandard"
  trajectories of the case study).
* :mod:`repro.hamiltonian.evolution` -- generic time-dependent propagator
  integration and computational-subspace projection with leakage tracking.
"""

from repro.hamiltonian.effective import EffectiveEntanglerModel, EntanglerParameters
from repro.hamiltonian.evolution import (
    evolve_propagator,
    project_to_computational_subspace,
)
from repro.hamiltonian.operators import annihilation, creation, number_operator
from repro.hamiltonian.transmon import TransmonCouplerSystem, TransmonCouplerParameters

__all__ = [
    "EffectiveEntanglerModel",
    "EntanglerParameters",
    "evolve_propagator",
    "project_to_computational_subspace",
    "annihilation",
    "creation",
    "number_operator",
    "TransmonCouplerSystem",
    "TransmonCouplerParameters",
]
