"""Three-mode model of two transmons coupled by a tunable coupler (Appendix A).

The system Hamiltonian is (hbar = 1, angular frequencies in rad/ns, i.e. a
5 GHz qubit has ``omega = 2*pi*5.0`` rad/ns)::

    H(t) = H_a + H_b + H_c(t) + H_g
    H_i  = omega_i n_i + alpha_i/2 * a_i^dag a_i^dag a_i a_i
    H_g  = -sum_{ij} ( g_ij a_i^dag a_j + h.c. )
    omega_c(t) = omega_c0 + delta * sin(omega_d * t)

The entangling interaction is activated parametrically by modulating the
coupler frequency at (approximately) the qubit-qubit detuning.  This module
provides the static diagnostics the calibration story needs: the dressed
spectrum, the static ZZ interaction and the zero-ZZ coupler bias point, plus
the time-dependent Hamiltonian callable consumed by
:func:`repro.hamiltonian.evolution.evolve_propagator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import brentq

from repro.hamiltonian.operators import annihilation, embed, multi_mode_state

TWO_PI = 2.0 * np.pi


@dataclass
class TransmonCouplerParameters:
    """Physical parameters of the unit cell (angular frequencies in rad/ns).

    Defaults follow the case-study architecture: far-detuned fixed-frequency
    transmons (~2 GHz apart), negative transmon anharmonicity, a flux-tunable
    coupler with positive anharmonicity biased between the two qubits.
    """

    qubit_a_freq: float = TWO_PI * 3.2
    qubit_b_freq: float = TWO_PI * 5.2
    coupler_freq: float = TWO_PI * 4.3
    qubit_a_anharmonicity: float = -TWO_PI * 0.22
    qubit_b_anharmonicity: float = -TWO_PI * 0.21
    coupler_anharmonicity: float = TWO_PI * 0.55
    coupling_ab: float = TWO_PI * 0.012
    coupling_ac: float = TWO_PI * 0.085
    coupling_bc: float = TWO_PI * 0.085
    levels: int = 3

    @property
    def detuning(self) -> float:
        """Qubit-qubit detuning ``|omega_a - omega_b|`` in rad/ns."""
        return abs(self.qubit_a_freq - self.qubit_b_freq)


@dataclass
class TransmonCouplerSystem:
    """Two fixed-frequency transmons coupled via a tunable coupler."""

    params: TransmonCouplerParameters = field(default_factory=TransmonCouplerParameters)

    def __post_init__(self) -> None:
        levels = self.params.levels
        self._dims = [levels, levels, levels]
        self._a = embed(annihilation(levels), 0, self._dims)
        self._b = embed(annihilation(levels), 1, self._dims)
        self._c = embed(annihilation(levels), 2, self._dims)

    # -- Hamiltonian construction -----------------------------------------

    def static_hamiltonian(self, coupler_freq: float | None = None) -> np.ndarray:
        """The time-independent Hamiltonian at a given coupler frequency."""
        p = self.params
        wc = p.coupler_freq if coupler_freq is None else coupler_freq
        a, b, c = self._a, self._b, self._c
        h = (
            p.qubit_a_freq * a.conj().T @ a
            + 0.5 * p.qubit_a_anharmonicity * a.conj().T @ a.conj().T @ a @ a
            + p.qubit_b_freq * b.conj().T @ b
            + 0.5 * p.qubit_b_anharmonicity * b.conj().T @ b.conj().T @ b @ b
            + wc * c.conj().T @ c
            + 0.5 * p.coupler_anharmonicity * c.conj().T @ c.conj().T @ c @ c
        )
        couplings = (
            p.coupling_ab * (a.conj().T @ b + b.conj().T @ a)
            + p.coupling_ac * (a.conj().T @ c + c.conj().T @ a)
            + p.coupling_bc * (b.conj().T @ c + c.conj().T @ b)
        )
        return h - couplings

    def driven_hamiltonian(
        self,
        drive_amplitude: float,
        drive_frequency: float,
        coupler_freq: float | None = None,
    ):
        """Return ``H(t)`` with the coupler frequency modulated sinusoidally.

        ``drive_amplitude`` is the modulation depth ``delta`` in rad/ns (the
        flux drive ``xi`` maps onto ``delta`` approximately linearly for the
        small amplitudes considered here).
        """
        p = self.params
        wc0 = p.coupler_freq if coupler_freq is None else coupler_freq
        base = self.static_hamiltonian(wc0)
        number_c = self._c.conj().T @ self._c

        def hamiltonian(t: float) -> np.ndarray:
            return base + drive_amplitude * np.sin(drive_frequency * t) * number_c

        return hamiltonian

    # -- spectrum diagnostics ----------------------------------------------

    def dressed_energies(self, coupler_freq: float | None = None) -> dict[tuple[int, int, int], float]:
        """Dressed eigenenergies labelled by their bare-state character.

        Each eigenstate is assigned to the bare label ``(n_a, n_b, n_c)`` with
        which it has maximal overlap; this is the standard way experimentalists
        label the spectrum of a weakly coupled system.
        """
        h = self.static_hamiltonian(coupler_freq)
        energies, states = np.linalg.eigh(h)
        labels: dict[tuple[int, int, int], float] = {}
        levels = self.params.levels
        bare_states = {}
        for na in range(levels):
            for nb in range(levels):
                for nc in range(levels):
                    bare_states[(na, nb, nc)] = multi_mode_state([na, nb, nc], self._dims)
        assigned: set[int] = set()
        for label, bare in bare_states.items():
            overlaps = np.abs(states.conj().T @ bare) ** 2
            for index in np.argsort(overlaps)[::-1]:
                if index not in assigned:
                    assigned.add(int(index))
                    labels[label] = float(energies[index])
                    break
        return labels

    def static_zz(self, coupler_freq: float | None = None) -> float:
        """Static ZZ interaction rate (rad/ns) at the given coupler bias.

        ``zz = E(11) - E(10) - E(01) + E(00)`` using the dressed energies; a
        nonzero value is the always-on crosstalk the architecture is designed
        to cancel at the zero-ZZ bias point.
        """
        energies = self.dressed_energies(coupler_freq)
        return (
            energies[(1, 1, 0)]
            - energies[(1, 0, 0)]
            - energies[(0, 1, 0)]
            + energies[(0, 0, 0)]
        )

    def find_zero_zz_bias(
        self,
        low: float | None = None,
        high: float | None = None,
        samples: int = 60,
    ) -> float:
        """Coupler frequency between the qubits where the static ZZ vanishes.

        Scans the interval for a sign change and refines it with Brent's
        method; raises ``ValueError`` when no zero crossing exists in range.
        """
        p = self.params
        lo = min(p.qubit_a_freq, p.qubit_b_freq) + 0.05 * p.detuning if low is None else low
        hi = max(p.qubit_a_freq, p.qubit_b_freq) - 0.05 * p.detuning if high is None else high
        grid = np.linspace(lo, hi, samples)
        values = [self.static_zz(w) for w in grid]
        # The dressed-state labelling can jump at avoided crossings, which
        # creates spurious sign changes; accept a root only if the ZZ really
        # vanishes there, and otherwise keep the best candidate seen.
        best_bias = float(grid[int(np.argmin(np.abs(values)))])
        best_value = abs(self.static_zz(best_bias))
        for left, right, v_left, v_right in zip(grid[:-1], grid[1:], values[:-1], values[1:]):
            if np.sign(v_left) != np.sign(v_right):
                try:
                    root = float(brentq(self.static_zz, left, right, xtol=1e-6))
                except ValueError:
                    continue
                value = abs(self.static_zz(root))
                if value < best_value:
                    best_bias, best_value = root, value
        return best_bias

    # -- helpers -------------------------------------------------------------

    @property
    def dims(self) -> list[int]:
        """Local dimensions of the three modes (qubit a, qubit b, coupler)."""
        return list(self._dims)

    def computational_indices(self) -> list[int]:
        """Indices of the computational states |n_a n_b, coupler=0> in the
        full Hilbert space, ordered as |00>, |01>, |10>, |11>."""
        levels = self.params.levels
        indices = []
        for na in (0, 1):
            for nb in (0, 1):
                indices.append((na * levels + nb) * levels + 0)
        return indices
