"""Bosonic operators and tensor-product helpers for the device Hamiltonians."""

from __future__ import annotations

import numpy as np


def annihilation(levels: int) -> np.ndarray:
    """Truncated bosonic annihilation operator on ``levels`` levels."""
    if levels < 2:
        raise ValueError("need at least two levels")
    op = np.zeros((levels, levels), dtype=complex)
    for n in range(1, levels):
        op[n - 1, n] = np.sqrt(n)
    return op


def creation(levels: int) -> np.ndarray:
    """Truncated bosonic creation operator on ``levels`` levels."""
    return annihilation(levels).conj().T


def number_operator(levels: int) -> np.ndarray:
    """Number operator ``a^dag a`` on ``levels`` levels."""
    return np.diag(np.arange(levels, dtype=float)).astype(complex)


def embed(operator: np.ndarray, position: int, dims: list[int]) -> np.ndarray:
    """Embed a single-mode operator into a multi-mode tensor-product space.

    ``dims`` lists the local dimension of every mode; ``position`` is the
    index of the mode the operator acts on.
    """
    if not 0 <= position < len(dims):
        raise ValueError(f"position {position} out of range for {len(dims)} modes")
    if operator.shape != (dims[position], dims[position]):
        raise ValueError(
            f"operator shape {operator.shape} does not match mode dimension "
            f"{dims[position]}"
        )
    result = np.eye(1, dtype=complex)
    for index, dim in enumerate(dims):
        factor = operator if index == position else np.eye(dim, dtype=complex)
        result = np.kron(result, factor)
    return result


def basis_state(index: int, dim: int) -> np.ndarray:
    """Column basis vector ``|index>`` in a ``dim``-dimensional space."""
    state = np.zeros(dim, dtype=complex)
    state[index] = 1.0
    return state


def multi_mode_state(indices: list[int], dims: list[int]) -> np.ndarray:
    """Tensor-product basis state ``|i0, i1, ...>`` for the given mode dims."""
    if len(indices) != len(dims):
        raise ValueError("one index per mode is required")
    state = np.array([1.0 + 0j])
    for index, dim in zip(indices, dims):
        state = np.kron(state, basis_state(index, dim))
    return state
