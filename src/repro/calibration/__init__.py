"""Calibration of (possibly nonstandard) two-qubit basis gates (Section VI).

The paper proposes a two-stage protocol:

* an **initial tuneup** that assumes nothing about the trajectory: coarse
  amplitude/frequency tuning, quantum process tomography (QPT) of every gate
  along the cropped trajectory, narrowing of candidates with the Section V
  criteria, and gate set tomography (GST) of the finalists;
* a cheap daily **retuning** that reuses the initial-tuneup information.

This package simulates that protocol end to end against the effective device
models: QPT with finite shots (and optional SPAM error), a GST-like
self-consistent refinement that amplifies coherent errors with repeated-gate
sequences, a drift model, and the edge-colouring scheduler that calibrates
non-overlapping pairs in parallel.
"""

from repro.calibration.tomography import (
    QptResult,
    simulate_process_tomography,
)
from repro.calibration.gst import GstResult, refine_gate_estimate
from repro.calibration.protocol import (
    CalibrationProtocol,
    CalibrationRecord,
    RetuneResult,
    retune_selection,
)
from repro.calibration.scheduling import calibration_batches

__all__ = [
    "QptResult",
    "simulate_process_tomography",
    "GstResult",
    "refine_gate_estimate",
    "CalibrationProtocol",
    "CalibrationRecord",
    "RetuneResult",
    "retune_selection",
    "calibration_batches",
]
