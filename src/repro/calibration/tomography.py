"""Simulated quantum process tomography (QPT) with finite shots.

QPT is the workhorse of the initial-tuneup stage: it estimates the unitary of
every gate along the cropped Cartan trajectory.  We simulate it faithfully:
informationally complete product input states, Pauli expectation values
estimated from a finite number of shots, linear-inversion reconstruction of
the Pauli transfer matrix, and extraction of the closest unitary from the
dominant eigenvector of the Choi matrix.  Optional state-preparation and
measurement (SPAM) error reproduces QPT's known inability to separate SPAM
from gate errors -- the reason the paper recommends GST for the final
characterisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np

from repro.gates.constants import IDENTITY_1Q, PAULI_X, PAULI_Y, PAULI_Z
from repro.gates.unitary import closest_unitary, process_fidelity

_SINGLE_PAULIS = [IDENTITY_1Q, PAULI_X, PAULI_Y, PAULI_Z]

#: The 16 two-qubit Pauli operators, ordered II, IX, IY, IZ, XI, ...
TWO_QUBIT_PAULIS = [np.kron(p, q) for p, q in product(_SINGLE_PAULIS, repeat=2)]

# Informationally complete single-qubit preparation states.
_KET0 = np.array([1, 0], dtype=complex)
_KET1 = np.array([0, 1], dtype=complex)
_KETP = np.array([1, 1], dtype=complex) / np.sqrt(2)
_KETPI = np.array([1, 1j], dtype=complex) / np.sqrt(2)
_PREP_STATES = [_KET0, _KET1, _KETP, _KETPI]


@dataclass
class QptResult:
    """Outcome of a simulated process tomography experiment."""

    estimated_unitary: np.ndarray
    pauli_transfer_matrix: np.ndarray
    shots: int

    def fidelity_to(self, unitary: np.ndarray) -> float:
        """Process fidelity between the estimate and a reference unitary."""
        return process_fidelity(self.estimated_unitary, unitary)


def _input_density_matrices(spam_error: float) -> list[np.ndarray]:
    """The 16 product input states, optionally depolarised by SPAM error."""
    states = []
    for ket_a, ket_b in product(_PREP_STATES, repeat=2):
        ket = np.kron(ket_a, ket_b)
        rho = np.outer(ket, ket.conj())
        if spam_error > 0:
            rho = (1 - spam_error) * rho + spam_error * np.eye(4) / 4.0
        states.append(rho)
    return states


def simulate_process_tomography(
    unitary: np.ndarray,
    shots: int = 2000,
    spam_error: float = 0.0,
    rng: np.random.Generator | None = None,
) -> QptResult:
    """Simulate QPT of a two-qubit unitary.

    Args:
        unitary: the true 4x4 gate being characterised.
        shots: number of measurement shots per (input state, Pauli) setting.
        spam_error: depolarising error applied to the prepared states (models
            SPAM; QPT folds it into the gate estimate).
        rng: random generator for shot noise.
    """
    unitary = np.asarray(unitary, dtype=complex)
    rng = rng if rng is not None else np.random.default_rng(0)
    inputs = _input_density_matrices(spam_error)

    # Measured data D[k, i] ~ tr(P_i U rho_k U^dag) with binomial shot noise.
    data = np.zeros((len(inputs), len(TWO_QUBIT_PAULIS)))
    basis_overlap = np.zeros_like(data)
    for k, rho in enumerate(inputs):
        evolved = unitary @ rho @ unitary.conj().T
        for i, pauli in enumerate(TWO_QUBIT_PAULIS):
            expectation = float(np.real(np.trace(pauli @ evolved)))
            basis_overlap[k, i] = float(np.real(np.trace(pauli @ rho)))
            if i == 0 or shots <= 0:
                data[k, i] = expectation  # identity expectation is exactly 1
                continue
            probability_plus = np.clip((1.0 + expectation) / 2.0, 0.0, 1.0)
            counts = rng.binomial(shots, probability_plus)
            data[k, i] = 2.0 * counts / shots - 1.0

    # Linear inversion: D = M R^T with M[k, j] = tr(P_j rho_k).
    ptm_transposed, *_ = np.linalg.lstsq(basis_overlap, data, rcond=None)
    ptm = ptm_transposed.T

    choi = ptm_to_choi(ptm)
    estimate = choi_to_unitary(choi)
    return QptResult(estimated_unitary=estimate, pauli_transfer_matrix=ptm, shots=shots)


def ptm_to_choi(ptm: np.ndarray) -> np.ndarray:
    """Convert a Pauli transfer matrix to the (unnormalised) Choi matrix.

    ``Choi = (1/d^2) sum_ij R_ij P_j^T (x) P_i`` with ``d = 4`` for two
    qubits; for a unitary channel the result has rank one.
    """
    dim = 4
    choi = np.zeros((dim * dim, dim * dim), dtype=complex)
    for i, p_i in enumerate(TWO_QUBIT_PAULIS):
        for j, p_j in enumerate(TWO_QUBIT_PAULIS):
            choi += ptm[i, j] * np.kron(p_j.T, p_i)
    return choi / dim**2


def choi_to_unitary(choi: np.ndarray) -> np.ndarray:
    """Closest unitary description of a (nearly rank-one) Choi matrix."""
    values, vectors = np.linalg.eigh((choi + choi.conj().T) / 2)
    dominant = vectors[:, int(np.argmax(values))]
    dim = 4
    candidate = dominant.reshape(dim, dim).T * np.sqrt(dim)
    return closest_unitary(candidate)


def unitary_to_ptm(unitary: np.ndarray) -> np.ndarray:
    """Exact Pauli transfer matrix of a unitary (reference, no noise)."""
    unitary = np.asarray(unitary, dtype=complex)
    dim = 4
    ptm = np.zeros((len(TWO_QUBIT_PAULIS), len(TWO_QUBIT_PAULIS)))
    for j, p_j in enumerate(TWO_QUBIT_PAULIS):
        evolved = unitary @ p_j @ unitary.conj().T
        for i, p_i in enumerate(TWO_QUBIT_PAULIS):
            ptm[i, j] = float(np.real(np.trace(p_i @ evolved))) / dim
    return ptm
