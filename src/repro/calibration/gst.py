"""A GST-flavoured refinement of a gate estimate.

Full gate set tomography fits every operation (gates, preparations and
measurements) self-consistently from long "germ" sequences that amplify
coherent errors.  The essential ingredient for this project is the
amplification: data from repeated applications ``U, U^2, U^4, U^8`` of the
gate pins down small coherent deviations far better than single-application
QPT can.  :func:`refine_gate_estimate` implements exactly that: it fits a
small coherent correction to an initial (e.g. QPT) estimate against simulated
repeated-gate data, and reports the error-generator norm -- the quantity the
paper highlights as the relevant output of GST for retuning.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np
from scipy.linalg import expm
from scipy.optimize import minimize

from repro.calibration.tomography import TWO_QUBIT_PAULIS, _PREP_STATES
from repro.gates.unitary import process_fidelity

#: Default repeated-application lengths ("germ powers").
DEFAULT_SEQUENCE_LENGTHS = (1, 2, 4, 8)


@dataclass
class GstResult:
    """Outcome of the GST-like refinement."""

    estimated_unitary: np.ndarray
    initial_unitary: np.ndarray
    error_generator_norm: float
    cost: float

    def fidelity_to(self, unitary: np.ndarray) -> float:
        """Process fidelity between the refined estimate and a reference."""
        return process_fidelity(self.estimated_unitary, unitary)


def _expectation_data(
    unitary: np.ndarray,
    lengths: tuple[int, ...],
    shots: int,
    rng: np.random.Generator,
    n_inputs: int = 6,
    n_paulis: int = 9,
) -> np.ndarray:
    """Simulated Pauli expectations after repeated applications of ``unitary``."""
    inputs = []
    for ket_a, ket_b in list(product(_PREP_STATES, repeat=2))[:n_inputs]:
        ket = np.kron(ket_a, ket_b)
        inputs.append(np.outer(ket, ket.conj()))
    paulis = TWO_QUBIT_PAULIS[1 : 1 + n_paulis]
    data = np.zeros((len(lengths), len(inputs), len(paulis)))
    for li, length in enumerate(lengths):
        repeated = np.linalg.matrix_power(unitary, length)
        for k, rho in enumerate(inputs):
            evolved = repeated @ rho @ repeated.conj().T
            for i, pauli in enumerate(paulis):
                expectation = float(np.real(np.trace(pauli @ evolved)))
                if shots > 0:
                    p_plus = np.clip((1 + expectation) / 2, 0, 1)
                    counts = rng.binomial(shots, p_plus)
                    expectation = 2 * counts / shots - 1
                data[li, k, i] = expectation
    return data


def _predicted_data(
    unitary: np.ndarray, lengths: tuple[int, ...], n_inputs: int = 6, n_paulis: int = 9
) -> np.ndarray:
    """Noise-free expectations for a candidate gate (model prediction)."""
    return _expectation_data(unitary, lengths, shots=0, rng=np.random.default_rng(0),
                             n_inputs=n_inputs, n_paulis=n_paulis)


def refine_gate_estimate(
    true_unitary: np.ndarray,
    initial_estimate: np.ndarray,
    shots: int = 4000,
    lengths: tuple[int, ...] = DEFAULT_SEQUENCE_LENGTHS,
    rng: np.random.Generator | None = None,
    max_generators: int = 15,
) -> GstResult:
    """Refine ``initial_estimate`` against repeated-gate data from the device.

    The correction is parametrised as ``U = U0 exp(-i sum_a theta_a P_a / 2)``
    over the 15 non-identity two-qubit Paulis; the thetas are the coherent
    error-generator coefficients.  The returned ``error_generator_norm`` is
    the Euclidean norm of the fitted coefficients -- small when QPT already
    nailed the gate, larger when SPAM or shot noise biased it.
    """
    rng = rng if rng is not None else np.random.default_rng(1)
    true_unitary = np.asarray(true_unitary, dtype=complex)
    initial_estimate = np.asarray(initial_estimate, dtype=complex)
    measured = _expectation_data(true_unitary, lengths, shots, rng)

    generators = TWO_QUBIT_PAULIS[1 : 1 + max_generators]

    def candidate(thetas: np.ndarray) -> np.ndarray:
        generator = sum(t * p for t, p in zip(thetas, generators))
        return initial_estimate @ expm(-0.5j * generator)

    def cost(thetas: np.ndarray) -> float:
        predicted = _predicted_data(candidate(thetas), lengths)
        return float(np.mean((predicted - measured) ** 2))

    x0 = np.zeros(len(generators))
    result = minimize(cost, x0, method="Powell", options={"maxiter": 2000, "xtol": 1e-6})
    thetas = result.x
    refined = candidate(thetas)
    return GstResult(
        estimated_unitary=refined,
        initial_unitary=initial_estimate,
        error_generator_norm=float(np.linalg.norm(thetas)),
        cost=float(result.fun),
    )
