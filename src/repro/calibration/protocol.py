"""The two-stage calibration protocol of Section VI.

``initial_tuneup`` performs the expensive once-a-month characterisation of an
edge: coarse tuning to locate the region of interest, QPT of each trajectory
point in that window, candidate narrowing via the Section V basis-gate
criteria, and a GST-like refinement of the finalist.  ``retune`` performs the
cheap daily re-calibration: it re-estimates the trajectory speed (amplitude /
frequency calibration in the lab) and rescales the stored gate duration,
reusing everything else from the initial tuneup -- justified by the observed
day-to-day stability of the measured trajectories (Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.calibration.gst import GstResult, refine_gate_estimate
from repro.calibration.tomography import QptResult, simulate_process_tomography
from repro.core.basis_selection import BasisGateSelection, select_basis_gate
from repro.core.trajectory import CartanTrajectory
from repro.gates.unitary import process_fidelity
from repro.hamiltonian.effective import EffectiveEntanglerModel


@dataclass
class CalibrationRecord:
    """Everything learned about one edge during an initial tuneup."""

    strategy: str
    selection: BasisGateSelection
    estimated_unitary: np.ndarray
    true_unitary: np.ndarray
    qpt_results: list[QptResult] = field(default_factory=list)
    gst_result: GstResult | None = None

    @property
    def characterisation_fidelity(self) -> float:
        """Process fidelity between the final estimate and the true gate."""
        return process_fidelity(self.estimated_unitary, self.true_unitary)


@dataclass
class RetuneResult:
    """Outcome of a quick retuning cycle."""

    previous_duration: float
    retuned_duration: float
    speed_ratio: float
    gate_fidelity_after_retune: float


def retune_selection(
    selection: BasisGateSelection,
    reference_xy_rate: float,
    drifted_xy_rate: float,
) -> BasisGateSelection:
    """Rescale a stored selection's duration after drift (the daily retune).

    The lab's 1-5 minute amplitude/frequency calibration re-estimates the
    trajectory speed and stretches the stored pulse duration by
    ``reference_rate / drifted_rate`` so the *same point* of the trajectory
    is reached again; everything else (the intended unitary, the layer
    counts the decomposition was derived for) is reused from the initial
    tuneup.  The returned selection keeps the reference unitary as the
    intended gate -- any residual mismatch between it and the drifted
    Hamiltonian at the rescaled duration is exactly the retune's
    approximation error, which the drift engine's fidelity evaluation
    measures.

    Example::

        fresh = retune_selection(stale, reference_xy_rate=0.076,
                                 drifted_xy_rate=0.071)
        fresh.duration / stale.duration      # == 0.076 / 0.071
    """
    if reference_xy_rate <= 0 or drifted_xy_rate <= 0:
        raise ValueError(
            "xy rates must be positive, got "
            f"{reference_xy_rate} and {drifted_xy_rate}"
        )
    return replace(
        selection, duration=selection.duration * reference_xy_rate / drifted_xy_rate
    )


@dataclass
class CalibrationProtocol:
    """Simulated calibration protocol for one pair of qubits.

    Args:
        shots: shots per tomography setting.
        spam_error: preparation/measurement depolarisation used for QPT (the
            GST stage is insensitive to it by construction).
        qpt_stride: characterise every ``qpt_stride``-th trajectory point
            (controller-resolution spacing is rarely needed end to end).
        run_gst: whether to run the GST-like refinement on the finalist.
        seed: randomness seed for shot noise.
    """

    shots: int = 2000
    spam_error: float = 0.01
    qpt_stride: int = 4
    run_gst: bool = True
    seed: int = 9

    def initial_tuneup(
        self,
        model: EffectiveEntanglerModel,
        strategy: str = "criterion2",
        max_duration: float | None = None,
        resolution: float = 1.0,
    ) -> CalibrationRecord:
        """Run the full initial-tuneup pipeline on one entangler model."""
        rng = np.random.default_rng(self.seed)

        # Step 1: coarse tuning -- estimate the region of interest from the
        # exchange rate (amplitude/frequency calibration in the lab).
        if max_duration is None:
            max_duration = 0.7 * np.pi / model.xy_rate

        # Step 2: QPT along the cropped trajectory.
        durations = np.arange(resolution, max_duration, resolution * self.qpt_stride)
        qpt_results: list[QptResult] = []
        estimated_unitaries: list[np.ndarray] = []
        for duration in durations:
            true_gate = model.unitary(float(duration))
            qpt = simulate_process_tomography(
                true_gate, shots=self.shots, spam_error=self.spam_error, rng=rng
            )
            qpt_results.append(qpt)
            estimated_unitaries.append(qpt.estimated_unitary)

        # Step 3: candidate narrowing with the Section V criteria, applied to
        # the *estimated* trajectory (what an experimentalist would have).
        estimated_trajectory = CartanTrajectory.from_unitaries(
            durations, estimated_unitaries, label="QPT estimate"
        )
        selection = select_basis_gate(estimated_trajectory, strategy)

        # Step 4: characterise the selected candidate precisely -- a dedicated
        # QPT at the selected duration, optionally followed by the GST-like
        # refinement (the paper's final tuneup step).
        true_unitary = model.unitary(selection.duration)
        final_qpt = simulate_process_tomography(
            true_unitary, shots=self.shots, spam_error=self.spam_error, rng=rng
        )
        qpt_results.append(final_qpt)
        initial_estimate = final_qpt.estimated_unitary
        gst_result = None
        estimate = initial_estimate
        if self.run_gst:
            gst_result = refine_gate_estimate(
                true_unitary, initial_estimate, shots=2 * self.shots,
                rng=np.random.default_rng(self.seed + 1),
            )
            estimate = gst_result.estimated_unitary

        return CalibrationRecord(
            strategy=strategy,
            selection=selection,
            estimated_unitary=estimate,
            true_unitary=true_unitary,
            qpt_results=qpt_results,
            gst_result=gst_result,
        )

    def retune(
        self,
        record: CalibrationRecord,
        drifted_model: EffectiveEntanglerModel,
        reference_model: EffectiveEntanglerModel,
    ) -> RetuneResult:
        """Quick retuning after drift: rescale the stored duration.

        The lab analogue is a 1-5 minute amplitude/frequency calibration; in
        the simulation the speed ratio comes from comparing the drifted
        exchange rate to the reference one.
        """
        retuned = retune_selection(
            record.selection, reference_model.xy_rate, drifted_model.xy_rate
        )
        retuned_gate = drifted_model.unitary(retuned.duration)
        fidelity = process_fidelity(retuned_gate, record.true_unitary)
        return RetuneResult(
            previous_duration=record.selection.duration,
            retuned_duration=retuned.duration,
            speed_ratio=reference_model.xy_rate / drifted_model.xy_rate,
            gate_fidelity_after_retune=fidelity,
        )
