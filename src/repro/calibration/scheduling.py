"""Parallel calibration scheduling via edge colouring (Section VI).

Tomography experiments on disjoint pairs can run simultaneously, so the
calibration overhead of a whole device is set by the chromatic index of its
coupling graph: a square grid needs at most four colours, a heavy-hexagonal
lattice fewer.  This is why the paper argues its per-pair calibration does not
scale with device size.
"""

from __future__ import annotations

import networkx as nx

from repro.device.topology import edge_coloring


def calibration_batches(graph: nx.Graph) -> list[list[tuple[int, int]]]:
    """Group the device's edges into batches calibratable in parallel.

    Every batch is a matching (no two edges share a qubit); the number of
    batches equals the number of colours used by the greedy edge colouring.
    """
    coloring = edge_coloring(graph)
    n_colors = max(coloring.values()) + 1 if coloring else 0
    batches: list[list[tuple[int, int]]] = [[] for _ in range(n_colors)]
    for edge, color in sorted(coloring.items()):
        batches[color].append(edge)
    return batches


def validate_batches(batches: list[list[tuple[int, int]]]) -> bool:
    """Check that no batch reuses a qubit (i.e. each batch is a matching)."""
    for batch in batches:
        seen: set[int] = set()
        for a, b in batch:
            if a in seen or b in seen:
                return False
            seen.update((a, b))
    return True


def calibration_rounds_for_device(graph: nx.Graph) -> int:
    """Number of parallel calibration rounds needed for the whole device."""
    return len(calibration_batches(graph))
