"""Core contribution: per-pair basis-gate selection from Cartan trajectories.

This package implements Section V-E of the paper: given the Cartan trajectory
traced out by a pair's entangling pulse as its duration grows, select the 2Q
basis gate for that pair according to a configurable criterion:

* **Baseline** -- the sqrt(iSWAP)-equivalent point on the slow, standard
  trajectory (the comparison point of the case study);
* **Criterion 1** -- the fastest gate on the trajectory able to synthesize
  SWAP in three layers;
* **Criterion 2** -- the fastest gate able to synthesize SWAP in three layers
  *and* CNOT in two layers.

The framework is deliberately extensible: any predicate over Cartan
coordinates can serve as a selection criterion (e.g. "fastest perfect
entangler that gives SWAP in three layers").
"""

from repro.core.trajectory import CartanTrajectory, TrajectoryPoint
from repro.core.basis_selection import (
    BaselineSqrtIswapStrategy,
    BasisGateSelection,
    CompositeCriterionStrategy,
    Criterion1Strategy,
    Criterion2Strategy,
    PredicateStrategy,
    SelectionStrategy,
    select_basis_gate,
)
from repro.core.regions import (
    cnot2_feasible_volume_fraction,
    mirror_trajectory,
    swap2_segments,
    swap3_feasible_volume_fraction,
)

__all__ = [
    "CartanTrajectory",
    "TrajectoryPoint",
    "BaselineSqrtIswapStrategy",
    "BasisGateSelection",
    "CompositeCriterionStrategy",
    "Criterion1Strategy",
    "Criterion2Strategy",
    "PredicateStrategy",
    "SelectionStrategy",
    "select_basis_gate",
    "cnot2_feasible_volume_fraction",
    "mirror_trajectory",
    "swap2_segments",
    "swap3_feasible_volume_fraction",
]
