"""Cartan trajectories: the path a pair's entangling gate traces in the Weyl
chamber as the pulse duration grows.

A :class:`CartanTrajectory` is the central data object handed from the
calibration layer (which measures or simulates it) to the basis-gate
selection layer (which intersects it with the feasibility regions of
Section V).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.weyl.cartan import (
    canonicalize_coordinates,
    canonicalize_coordinates_batch,
    cartan_coordinates,
)
from repro.weyl.entangling_power import entangling_power_from_coordinates, is_perfect_entangler

Coords = tuple[float, float, float]


@dataclass(frozen=True)
class TrajectoryPoint:
    """A single sampled gate on a Cartan trajectory."""

    duration: float
    coordinates: Coords

    @property
    def entangling_power(self) -> float:
        """Entangling power of the gate at this point."""
        return entangling_power_from_coordinates(self.coordinates)


class CartanTrajectory:
    """A sampled Cartan trajectory, optionally backed by a gate model.

    Args:
        durations: monotonically increasing pulse durations (ns).
        coordinates: canonical Cartan coordinates for each duration,
            shape ``(n, 3)``.
        gate_model: optional callable ``duration -> 4x4 unitary``; when
            provided, crossings can be refined by bisection and the selected
            basis gate's unitary can be produced exactly.
        label: free-form description (e.g. "edge (3, 4) @ 0.04 Phi0").
    """

    def __init__(
        self,
        durations: Sequence[float],
        coordinates: Sequence[Coords] | np.ndarray,
        gate_model: Callable[[float], np.ndarray] | None = None,
        label: str = "",
    ):
        self.durations = np.asarray(durations, dtype=float)
        coords = np.asarray(coordinates, dtype=float)
        if coords.shape != (len(self.durations), 3):
            raise ValueError(
                f"coordinates shape {coords.shape} does not match "
                f"{len(self.durations)} durations"
            )
        if len(self.durations) < 2:
            raise ValueError("a trajectory needs at least two samples")
        if np.any(np.diff(self.durations) <= 0):
            raise ValueError("durations must be strictly increasing")
        self.coordinates = coords
        self.gate_model = gate_model
        self.label = label

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_model(
        cls,
        model,
        max_duration: float,
        resolution: float = 1.0,
        min_duration: float = 0.0,
        label: str = "",
    ) -> "CartanTrajectory":
        """Build a trajectory by sampling an entangler model.

        ``model`` must expose ``coordinates(duration)`` and ``unitary(duration)``
        (e.g. :class:`repro.hamiltonian.effective.EffectiveEntanglerModel`).
        """
        durations = np.arange(min_duration, max_duration + 0.5 * resolution, resolution)
        if durations[0] == 0.0:
            durations = durations[1:] if len(durations) > 2 else durations
        coords = np.array([model.coordinates(float(t)) for t in durations])
        return cls(durations, coords, gate_model=model.unitary, label=label)

    @classmethod
    def from_unitaries(
        cls,
        durations: Sequence[float],
        unitaries: Sequence[np.ndarray],
        label: str = "",
    ) -> "CartanTrajectory":
        """Build a trajectory from measured/simulated unitaries (e.g. QPT)."""
        coords = np.array([cartan_coordinates(u) for u in unitaries])
        return cls(durations, coords, label=label)

    # -- basic queries -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.durations)

    def __getitem__(self, index: int) -> TrajectoryPoint:
        return TrajectoryPoint(
            duration=float(self.durations[index]),
            coordinates=canonicalize_coordinates(self.coordinates[index]),
        )

    def points(self) -> list[TrajectoryPoint]:
        """All samples as :class:`TrajectoryPoint` objects."""
        return [self[i] for i in range(len(self))]

    def coordinates_at(self, duration: float) -> Coords:
        """Coordinates at an arbitrary duration (model if available, else
        linear interpolation of the sampled coordinates)."""
        if self.gate_model is not None and hasattr(self.gate_model, "__self__"):
            model = self.gate_model.__self__
            if hasattr(model, "coordinates"):
                return canonicalize_coordinates(model.coordinates(duration))
        interpolated = [
            float(np.interp(duration, self.durations, self.coordinates[:, k]))
            for k in range(3)
        ]
        return canonicalize_coordinates(tuple(interpolated))

    def unitary_at(self, duration: float) -> np.ndarray:
        """Unitary at a duration; requires a gate model."""
        if self.gate_model is None:
            raise ValueError("this trajectory has no gate model attached")
        return self.gate_model(duration)

    # -- crossings -----------------------------------------------------------

    def first_duration_where(
        self,
        predicate: Callable[[Coords], bool],
        refine: bool = True,
        refine_tolerance: float = 1e-3,
        batch_predicate: Callable[[np.ndarray], np.ndarray] | None = None,
    ) -> float | None:
        """First duration at which ``predicate`` becomes true.

        Scans the sampled points; if ``refine`` is set and the trajectory has
        a continuous description, the crossing is refined by bisection between
        the last failing and first passing samples.

        ``batch_predicate``, when given, must be the vectorized counterpart of
        ``predicate`` (an ``(n, 3)`` canonical-coordinate array in, a boolean
        mask out); it replaces the per-sample scan, while the bisection
        refinement always uses the scalar ``predicate``.
        """
        if batch_predicate is not None:
            mask = np.asarray(
                batch_predicate(canonicalize_coordinates_batch(self.coordinates)),
                dtype=bool,
            )
            first_index = int(np.argmax(mask)) if mask.any() else None
        else:
            flags = [predicate(canonicalize_coordinates(c)) for c in self.coordinates]
            first_index = next((i for i, f in enumerate(flags) if f), None)
        if first_index is None:
            return None
        if first_index == 0 or not refine:
            return float(self.durations[first_index])
        low = float(self.durations[first_index - 1])
        high = float(self.durations[first_index])
        while high - low > refine_tolerance:
            mid = 0.5 * (low + high)
            if predicate(self.coordinates_at(mid)):
                high = mid
            else:
                low = mid
        return high

    def first_perfect_entangler(self, refine: bool = True) -> float | None:
        """Duration of the first perfect entangler on the trajectory.

        This reproduces the "13 ns perfect entangler" analysis of Fig. 2.
        """
        return self.first_duration_where(is_perfect_entangler, refine=refine)

    def max_entangling_power(self) -> float:
        """Largest entangling power reached by any sampled point."""
        return max(
            entangling_power_from_coordinates(canonicalize_coordinates(c))
            for c in self.coordinates
        )

    def deviation_from_xy(self) -> float:
        """RMS distance of the sampled points from the standard XY line.

        The XY (iSWAP-family) line is ``tx = ty, tz = 0``; standard
        trajectories stay on it, nonstandard trajectories do not.
        """
        deviations = []
        for c in self.coordinates:
            tx, ty, tz = canonicalize_coordinates(c)
            deviations.append(((tx - ty) ** 2 + tz**2))
        return float(np.sqrt(np.mean(deviations)))
