"""Weyl-chamber region data for Fig. 4 of the paper.

These helpers package the geometric content of Section V in the exact form
the figure presents it: the two line segments of gates that give SWAP in two
layers (Fig. 4(a)), the mirror trajectory construction (Fig. 4(b)), the
tetrahedral complements of the SWAP-in-3 and CNOT-in-2 regions (Fig. 4(c)-(e))
and the intersection region (Fig. 4(f)), together with Monte-Carlo volume
fractions.
"""

from __future__ import annotations

import numpy as np

from repro.synthesis.depth import (
    CNOT2_INFEASIBLE_TETRAHEDRA,
    SWAP3_INFEASIBLE_TETRAHEDRA,
    can_synthesize_cnot_in_2_layers,
    can_synthesize_swap_in_3_layers,
    mirror_coordinates,
)
from repro.weyl.chamber import WEYL_POINTS, chamber_volume_fraction, points_on_segment

Coords = tuple[float, float, float]


def swap2_segments(n_points: int = 21) -> dict[str, np.ndarray]:
    """The two segments of self-sufficient SWAP-in-2-layers gates (Fig. 4(a)).

    One runs from the B gate to sqrt(SWAP) and the other from B to
    sqrt(SWAP)^dag.
    """
    b = WEYL_POINTS["B"]
    return {
        "B_to_sqrt_swap": np.array(
            list(points_on_segment(b, WEYL_POINTS["SQRT_SWAP"], n_points))
        ),
        "B_to_sqrt_swap_dag": np.array(
            list(points_on_segment(b, WEYL_POINTS["SQRT_SWAP_DAG"], n_points))
        ),
    }


def mirror_trajectory(coordinates: np.ndarray) -> np.ndarray:
    """Mirror every point of a trajectory (Fig. 4(b)).

    For each point the returned point is the unique partner with which it
    could synthesize SWAP in two layers; a trajectory leaving the identity has
    a mirror leaving SWAP, and the two only intersect for very special
    trajectories -- which is why two-layer SWAP synthesis is generally not
    available and Criterion 1 settles for three layers.
    """
    return np.array([mirror_coordinates(tuple(c)) for c in np.asarray(coordinates, float)])


def swap3_infeasible_tetrahedra() -> tuple:
    """Vertices of the four tetrahedra of Fig. 4(c)/(d)."""
    return SWAP3_INFEASIBLE_TETRAHEDRA


def cnot2_infeasible_tetrahedra() -> tuple:
    """Vertices of the three tetrahedra of Fig. 4(e)."""
    return CNOT2_INFEASIBLE_TETRAHEDRA


def swap3_feasible_volume_fraction(n_samples: int = 20000, seed: int = 1234) -> float:
    """Monte-Carlo fraction of the chamber able to give SWAP in 3 layers.

    The paper quotes 68.5 %.
    """
    rng = np.random.default_rng(seed)
    return chamber_volume_fraction(can_synthesize_swap_in_3_layers, n_samples, rng)


def cnot2_feasible_volume_fraction(n_samples: int = 20000, seed: int = 1234) -> float:
    """Monte-Carlo fraction of the chamber able to give CNOT in 2 layers.

    The paper quotes 75 %.
    """
    rng = np.random.default_rng(seed)
    return chamber_volume_fraction(can_synthesize_cnot_in_2_layers, n_samples, rng)


def intersection_volume_fraction(n_samples: int = 20000, seed: int = 1234) -> float:
    """Fraction of the chamber in the Fig. 4(f) region (SWAP-3 and CNOT-2)."""
    rng = np.random.default_rng(seed)
    return chamber_volume_fraction(
        lambda c: can_synthesize_swap_in_3_layers(c) and can_synthesize_cnot_in_2_layers(c),
        n_samples,
        rng,
    )


def exact_infeasible_volume_fractions() -> dict[str, float]:
    """Exact (analytic) chamber volume fractions of the infeasible regions.

    Computed from the tetrahedra vertices; the chamber volume is 1/24.
    """
    def tetra_volume(vertices) -> float:
        v = np.asarray(vertices, dtype=float)
        return float(abs(np.linalg.det(v[1:] - v[0])) / 6.0)

    chamber = 1.0 / 24.0
    swap3 = sum(tetra_volume(t) for t in SWAP3_INFEASIBLE_TETRAHEDRA) / chamber
    cnot2 = sum(tetra_volume(t) for t in CNOT2_INFEASIBLE_TETRAHEDRA) / chamber
    return {"swap3_infeasible": swap3, "cnot2_infeasible": cnot2}
