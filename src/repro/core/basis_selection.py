"""Basis-gate selection strategies (Section V-E of the paper).

Each strategy inspects a pair's Cartan trajectory and returns the duration --
and hence the gate -- that should be calibrated as that pair's two-qubit basis
gate.  Criteria 1 and 2 are the two strategies evaluated in the case study;
the baseline strategy picks the sqrt(iSWAP)-equivalent gate from the standard
(low-drive) trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.trajectory import CartanTrajectory
from repro.synthesis.depth import (
    can_synthesize_cnot_in_2_layers,
    can_synthesize_swap_in_3_layers,
)
from repro.weyl.cartan import canonicalize_coordinates
from repro.weyl.chamber import WEYL_POINTS, point_distance
from repro.weyl.entangling_power import is_perfect_entangler

Coords = tuple[float, float, float]


@dataclass(frozen=True)
class BasisGateSelection:
    """The outcome of selecting a basis gate from a trajectory.

    Attributes:
        strategy: name of the selection strategy.
        duration: pulse duration of the selected gate (ns).
        coordinates: canonical Cartan coordinates of the selected gate.
        unitary: 4x4 unitary of the gate (None when the trajectory carries no
            gate model).
        swap_layers: number of layers needed to synthesize SWAP with this gate.
        cnot_layers: number of layers needed to synthesize CNOT with this gate.
    """

    strategy: str
    duration: float
    coordinates: Coords
    unitary: np.ndarray | None
    swap_layers: int
    cnot_layers: int


class SelectionStrategy:
    """Base class for basis-gate selection strategies."""

    name = "base"

    def predicate(self, coords: Coords) -> bool:
        """Feasibility predicate the selected gate must satisfy."""
        raise NotImplementedError

    def select(self, trajectory: CartanTrajectory) -> BasisGateSelection:
        """Select the fastest gate on ``trajectory`` satisfying the predicate."""
        duration = trajectory.first_duration_where(self.predicate)
        if duration is None:
            raise ValueError(
                f"strategy {self.name!r} found no suitable gate on trajectory "
                f"{trajectory.label!r}"
            )
        coords = trajectory.coordinates_at(duration)
        unitary = None
        if trajectory.gate_model is not None:
            unitary = trajectory.unitary_at(duration)
        swap_layers = _swap_layer_count(coords)
        cnot_layers = 2 if can_synthesize_cnot_in_2_layers(coords) else 3
        return BasisGateSelection(
            strategy=self.name,
            duration=float(duration),
            coordinates=coords,
            unitary=unitary,
            swap_layers=swap_layers,
            cnot_layers=cnot_layers,
        )


def _swap_layer_count(coords: Coords) -> int:
    """Layer count for SWAP from a basis gate at ``coords`` (1, 2, 3 or 4)."""
    from repro.synthesis.depth import (
        can_synthesize_swap_in_1_layer,
        can_synthesize_swap_in_2_layers,
    )

    if can_synthesize_swap_in_1_layer(coords):
        return 1
    if can_synthesize_swap_in_2_layers(coords):
        return 2
    if can_synthesize_swap_in_3_layers(coords):
        return 3
    return 4


class Criterion1Strategy(SelectionStrategy):
    """Criterion 1: fastest gate able to synthesize SWAP in three layers."""

    name = "criterion1"

    def predicate(self, coords: Coords) -> bool:
        return can_synthesize_swap_in_3_layers(coords)


class Criterion2Strategy(SelectionStrategy):
    """Criterion 2: fastest gate giving SWAP in 3 layers and CNOT in 2."""

    name = "criterion2"

    def predicate(self, coords: Coords) -> bool:
        return can_synthesize_swap_in_3_layers(coords) and can_synthesize_cnot_in_2_layers(
            coords
        )


class BaselineSqrtIswapStrategy(SelectionStrategy):
    """Baseline: the sqrt(iSWAP)-equivalent gate on a standard trajectory.

    On an ideal XY trajectory the first gate able to synthesize SWAP in three
    layers *is* sqrt(iSWAP); on nearly standard trajectories the selected gate
    is the closest sampled gate to sqrt(iSWAP).  A tolerance guards against
    picking a genuinely nonstandard gate by accident.
    """

    name = "baseline"

    def __init__(self, tolerance: float = 0.08):
        self.tolerance = tolerance

    def predicate(self, coords: Coords) -> bool:
        return can_synthesize_swap_in_3_layers(coords)

    def select(self, trajectory: CartanTrajectory) -> BasisGateSelection:
        selection = super().select(trajectory)
        target = WEYL_POINTS["SQRT_ISWAP"]
        distance = point_distance(selection.coordinates, target)
        if distance > self.tolerance:
            raise ValueError(
                "baseline strategy expected a (near-)standard trajectory but the "
                f"selected gate {selection.coordinates} is {distance:.3f} away from "
                "sqrt(iSWAP); use Criterion 1/2 for nonstandard trajectories"
            )
        return BasisGateSelection(
            strategy=self.name,
            duration=selection.duration,
            coordinates=selection.coordinates,
            unitary=selection.unitary,
            swap_layers=selection.swap_layers,
            cnot_layers=selection.cnot_layers,
        )


class PredicateStrategy(SelectionStrategy):
    """A custom strategy built from an arbitrary coordinate predicate.

    Example: the paper mentions selecting "the fastest gate on the trajectory
    that is both a PE and can synthesize SWAP in 3 layers"::

        PredicateStrategy(
            "pe_and_swap3",
            lambda c: is_perfect_entangler(c) and can_synthesize_swap_in_3_layers(c),
        )
    """

    def __init__(self, name: str, predicate: Callable[[Coords], bool]):
        self.name = name
        self._predicate = predicate

    def predicate(self, coords: Coords) -> bool:
        return self._predicate(canonicalize_coordinates(coords))


@dataclass
class CompositeCriterionStrategy(SelectionStrategy):
    """Require several target gates to be synthesizable within layer budgets.

    ``targets`` maps a target name to ``(coordinates, max_layers)``; the
    strategy selects the fastest gate on the trajectory able to synthesize
    every target within its budget (using the exact region tests for SWAP and
    CNOT and the numerical oracle otherwise).  This realises the paper's
    "simultaneous prioritisation of multiple target gates".
    """

    targets: dict[str, tuple[Coords, int]] = field(default_factory=dict)
    name: str = "composite"

    def predicate(self, coords: Coords) -> bool:
        from repro.synthesis.depth import minimum_layers

        for target_coords, max_layers in self.targets.values():
            target = canonicalize_coordinates(target_coords)
            if target == WEYL_POINTS["SWAP"]:
                feasible = _swap_layer_count(coords) <= max_layers
            elif target == WEYL_POINTS["CNOT"] and max_layers == 2:
                feasible = can_synthesize_cnot_in_2_layers(coords)
            else:
                feasible = minimum_layers(target, coords, max_layers=max_layers) <= max_layers
            if not feasible:
                return False
        return True


def select_basis_gate(
    trajectory: CartanTrajectory, strategy: SelectionStrategy | str
) -> BasisGateSelection:
    """Convenience function: select a basis gate with a named strategy.

    Names are resolved through the strategy registry
    (:mod:`repro.compiler.pipeline.registry`); unknown names raise
    ``ValueError`` listing the registered strategies.
    """
    if isinstance(strategy, str):
        from repro.compiler.pipeline.registry import get_strategy

        strategy = get_strategy(strategy)
    return strategy.select(trajectory)


def available_strategies() -> Sequence[str]:
    """Names accepted by :func:`select_basis_gate` (registry contents)."""
    from repro.compiler.pipeline.registry import available_strategy_names

    return available_strategy_names()
