"""Basis-gate selection strategies (Section V-E of the paper).

Each strategy inspects a pair's Cartan trajectory and returns the duration --
and hence the gate -- that should be calibrated as that pair's two-qubit basis
gate.  Criteria 1 and 2 are the two strategies evaluated in the case study;
the baseline strategy picks the sqrt(iSWAP)-equivalent gate from the standard
(low-drive) trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.trajectory import CartanTrajectory
from repro.synthesis.depth import (
    can_synthesize_cnot_in_2_layers,
    can_synthesize_swap_in_3_layers,
    cnot2_feasible_mask,
    swap3_feasible_mask,
)
from repro.weyl.cartan import canonicalize_coordinates
from repro.weyl.chamber import WEYL_POINTS, point_distance
from repro.weyl.entangling_power import is_perfect_entangler

Coords = tuple[float, float, float]

#: Module switch for the vectorized trajectory scan.  The batch predicates
#: produce sample flags identical to the scalar ones (enforced by test), but
#: benchmarks need the scalar reference path to measure the speedup.
_BATCH_SCAN_ENABLED = True


def set_batch_scan(enabled: bool) -> bool:
    """Enable/disable the vectorized scan; returns the previous setting."""
    global _BATCH_SCAN_ENABLED
    previous = _BATCH_SCAN_ENABLED
    _BATCH_SCAN_ENABLED = bool(enabled)
    return previous


def batch_scan_enabled() -> bool:
    """Whether strategies use their vectorized predicates for the scan."""
    return _BATCH_SCAN_ENABLED


@dataclass(frozen=True)
class BasisGateSelection:
    """The outcome of selecting a basis gate from a trajectory.

    Attributes:
        strategy: name of the selection strategy.
        duration: pulse duration of the selected gate (ns).
        coordinates: canonical Cartan coordinates of the selected gate.
        unitary: 4x4 unitary of the gate (None when the trajectory carries no
            gate model).
        swap_layers: number of layers needed to synthesize SWAP with this gate.
        cnot_layers: number of layers needed to synthesize CNOT with this gate.
    """

    strategy: str
    duration: float
    coordinates: Coords
    unitary: np.ndarray | None
    swap_layers: int
    cnot_layers: int


class SelectionStrategy:
    """Base class for basis-gate selection strategies."""

    name = "base"
    #: True when :meth:`batch_predicate` implements a vectorized scan whose
    #: sample flags match the scalar :meth:`predicate` exactly.
    has_batch_predicate = False

    def predicate(self, coords: Coords) -> bool:
        """Feasibility predicate the selected gate must satisfy."""
        raise NotImplementedError

    def batch_predicate(self, coords: np.ndarray) -> np.ndarray:
        """Vectorized counterpart of :meth:`predicate` over ``(n, 3)`` points."""
        raise NotImplementedError

    def select(self, trajectory: CartanTrajectory) -> BasisGateSelection:
        """Select the fastest gate on ``trajectory`` satisfying the predicate."""
        batch = (
            self.batch_predicate
            if _BATCH_SCAN_ENABLED and self.has_batch_predicate
            else None
        )
        duration = trajectory.first_duration_where(
            self.predicate, batch_predicate=batch
        )
        if duration is None:
            raise ValueError(
                f"strategy {self.name!r} found no suitable gate on trajectory "
                f"{trajectory.label!r}"
            )
        return self._selection_from_duration(trajectory, duration)

    def select_batch(
        self, trajectories: Sequence[CartanTrajectory]
    ) -> list[BasisGateSelection]:
        """Select basis gates for many trajectories at once.

        With a vectorized predicate the per-sample scan runs as one mask call
        over all trajectories and the bisection refinements advance in
        lockstep (one mask call per step across all unresolved trajectories).
        Every per-point boolean matches the scalar predicate exactly, so the
        selected durations are identical to calling :meth:`select` per
        trajectory.
        """
        trajectories = list(trajectories)
        if not trajectories:
            return []
        if not (_BATCH_SCAN_ENABLED and self.has_batch_predicate):
            return [self.select(t) for t in trajectories]
        durations = _batched_first_durations(trajectories, self.batch_predicate)
        selections = []
        for trajectory, duration in zip(trajectories, durations):
            if duration is None:
                raise ValueError(
                    f"strategy {self.name!r} found no suitable gate on trajectory "
                    f"{trajectory.label!r}"
                )
            selections.append(self._selection_from_duration(trajectory, duration))
        return selections

    def _selection_from_duration(
        self, trajectory: CartanTrajectory, duration: float
    ) -> BasisGateSelection:
        coords = trajectory.coordinates_at(duration)
        unitary = None
        if trajectory.gate_model is not None:
            unitary = trajectory.unitary_at(duration)
        swap_layers = _swap_layer_count(coords)
        cnot_layers = 2 if can_synthesize_cnot_in_2_layers(coords) else 3
        return BasisGateSelection(
            strategy=self.name,
            duration=float(duration),
            coordinates=coords,
            unitary=unitary,
            swap_layers=swap_layers,
            cnot_layers=cnot_layers,
        )


def _batched_first_durations(
    trajectories: Sequence[CartanTrajectory],
    batch_mask: Callable[[np.ndarray], np.ndarray],
    refine_tolerance: float = 1e-3,
) -> list[float | None]:
    """First crossing duration per trajectory, computed in lockstep.

    Mirrors ``CartanTrajectory.first_duration_where`` exactly -- same scan,
    same bisection updates, same ``high`` endpoint returned -- but evaluates
    the feasibility mask across all trajectories per step instead of once per
    point per trajectory.
    """
    from repro.weyl.cartan import canonicalize_coordinates_batch

    counts = [len(t) for t in trajectories]
    all_coords = np.concatenate([t.coordinates for t in trajectories], axis=0)
    mask = np.asarray(
        batch_mask(canonicalize_coordinates_batch(all_coords)), dtype=bool
    )

    results: list[float | None] = [None] * len(trajectories)
    low: dict[int, float] = {}
    high: dict[int, float] = {}
    offset = 0
    for i, trajectory in enumerate(trajectories):
        flags = mask[offset : offset + counts[i]]
        offset += counts[i]
        if not flags.any():
            continue
        first_index = int(np.argmax(flags))
        if first_index == 0:
            results[i] = float(trajectory.durations[0])
        else:
            low[i] = float(trajectory.durations[first_index - 1])
            high[i] = float(trajectory.durations[first_index])

    active = [i for i in low if high[i] - low[i] > refine_tolerance]
    while active:
        mids = {i: 0.5 * (low[i] + high[i]) for i in active}
        rows = np.array(
            [trajectories[i].coordinates_at(mids[i]) for i in active], dtype=float
        )
        flags = np.asarray(batch_mask(rows), dtype=bool)
        still = []
        for passed, i in zip(flags, active):
            if passed:
                high[i] = mids[i]
            else:
                low[i] = mids[i]
            if high[i] - low[i] > refine_tolerance:
                still.append(i)
        active = still
    for i in low:
        results[i] = high[i]
    return results


def _swap_layer_count(coords: Coords) -> int:
    """Layer count for SWAP from a basis gate at ``coords`` (1, 2, 3 or 4)."""
    from repro.synthesis.depth import (
        can_synthesize_swap_in_1_layer,
        can_synthesize_swap_in_2_layers,
    )

    if can_synthesize_swap_in_1_layer(coords):
        return 1
    if can_synthesize_swap_in_2_layers(coords):
        return 2
    if can_synthesize_swap_in_3_layers(coords):
        return 3
    return 4


class Criterion1Strategy(SelectionStrategy):
    """Criterion 1: fastest gate able to synthesize SWAP in three layers."""

    name = "criterion1"
    has_batch_predicate = True

    def predicate(self, coords: Coords) -> bool:
        return can_synthesize_swap_in_3_layers(coords)

    def batch_predicate(self, coords: np.ndarray) -> np.ndarray:
        return swap3_feasible_mask(coords)


class Criterion2Strategy(SelectionStrategy):
    """Criterion 2: fastest gate giving SWAP in 3 layers and CNOT in 2."""

    name = "criterion2"
    has_batch_predicate = True

    def predicate(self, coords: Coords) -> bool:
        return can_synthesize_swap_in_3_layers(coords) and can_synthesize_cnot_in_2_layers(
            coords
        )

    def batch_predicate(self, coords: np.ndarray) -> np.ndarray:
        return swap3_feasible_mask(coords) & cnot2_feasible_mask(coords)


class BaselineSqrtIswapStrategy(SelectionStrategy):
    """Baseline: the sqrt(iSWAP)-equivalent gate on a standard trajectory.

    On an ideal XY trajectory the first gate able to synthesize SWAP in three
    layers *is* sqrt(iSWAP); on nearly standard trajectories the selected gate
    is the closest sampled gate to sqrt(iSWAP).  A tolerance guards against
    picking a genuinely nonstandard gate by accident.
    """

    name = "baseline"
    has_batch_predicate = True

    def __init__(self, tolerance: float = 0.08):
        self.tolerance = tolerance

    def predicate(self, coords: Coords) -> bool:
        return can_synthesize_swap_in_3_layers(coords)

    def batch_predicate(self, coords: np.ndarray) -> np.ndarray:
        return swap3_feasible_mask(coords)

    def _check_standard(self, selection: BasisGateSelection) -> None:
        target = WEYL_POINTS["SQRT_ISWAP"]
        distance = point_distance(selection.coordinates, target)
        if distance > self.tolerance:
            raise ValueError(
                "baseline strategy expected a (near-)standard trajectory but the "
                f"selected gate {selection.coordinates} is {distance:.3f} away from "
                "sqrt(iSWAP); use Criterion 1/2 for nonstandard trajectories"
            )

    def select(self, trajectory: CartanTrajectory) -> BasisGateSelection:
        selection = super().select(trajectory)
        self._check_standard(selection)
        return BasisGateSelection(
            strategy=self.name,
            duration=selection.duration,
            coordinates=selection.coordinates,
            unitary=selection.unitary,
            swap_layers=selection.swap_layers,
            cnot_layers=selection.cnot_layers,
        )

    def select_batch(
        self, trajectories: Sequence[CartanTrajectory]
    ) -> list[BasisGateSelection]:
        selections = super().select_batch(trajectories)
        for selection in selections:
            self._check_standard(selection)
        return selections


class PredicateStrategy(SelectionStrategy):
    """A custom strategy built from an arbitrary coordinate predicate.

    Example: the paper mentions selecting "the fastest gate on the trajectory
    that is both a PE and can synthesize SWAP in 3 layers"::

        PredicateStrategy(
            "pe_and_swap3",
            lambda c: is_perfect_entangler(c) and can_synthesize_swap_in_3_layers(c),
        )
    """

    def __init__(self, name: str, predicate: Callable[[Coords], bool]):
        self.name = name
        self._predicate = predicate

    def predicate(self, coords: Coords) -> bool:
        return self._predicate(canonicalize_coordinates(coords))


@dataclass
class CompositeCriterionStrategy(SelectionStrategy):
    """Require several target gates to be synthesizable within layer budgets.

    ``targets`` maps a target name to ``(coordinates, max_layers)``; the
    strategy selects the fastest gate on the trajectory able to synthesize
    every target within its budget (using the exact region tests for SWAP and
    CNOT and the numerical oracle otherwise).  This realises the paper's
    "simultaneous prioritisation of multiple target gates".
    """

    targets: dict[str, tuple[Coords, int]] = field(default_factory=dict)
    name: str = "composite"

    def predicate(self, coords: Coords) -> bool:
        from repro.synthesis.depth import minimum_layers

        for target_coords, max_layers in self.targets.values():
            target = canonicalize_coordinates(target_coords)
            if target == WEYL_POINTS["SWAP"]:
                feasible = _swap_layer_count(coords) <= max_layers
            elif target == WEYL_POINTS["CNOT"] and max_layers == 2:
                feasible = can_synthesize_cnot_in_2_layers(coords)
            else:
                feasible = minimum_layers(target, coords, max_layers=max_layers) <= max_layers
            if not feasible:
                return False
        return True


def select_basis_gate(
    trajectory: CartanTrajectory, strategy: SelectionStrategy | str
) -> BasisGateSelection:
    """Convenience function: select a basis gate with a named strategy.

    Names are resolved through the strategy registry
    (:mod:`repro.compiler.pipeline.registry`); unknown names raise
    ``ValueError`` listing the registered strategies.
    """
    if isinstance(strategy, str):
        from repro.compiler.pipeline.registry import get_strategy

        strategy = get_strategy(strategy)
    return strategy.select(trajectory)


def available_strategies() -> Sequence[str]:
    """Names accepted by :func:`select_basis_gate` (registry contents)."""
    from repro.compiler.pipeline.registry import available_strategy_names

    return available_strategy_names()
