"""Quantum-circuit intermediate representation and benchmark generators.

The paper evaluates its basis-gate selection on standard benchmark circuits
(BV, QFT, the Cuccaro and QFT adders, QAOA); this package provides a small
gate-level circuit IR, generators for those benchmarks, and an ASAP scheduler
that turns a circuit plus per-gate durations into per-qubit busy intervals
(the input to the coherence-limited fidelity model).
"""

from repro.circuits.circuit import Gate, QuantumCircuit
from repro.circuits.dag import DAGCircuit, DAGNode
from repro.circuits.equivalence import (
    assert_circuits_equivalent,
    circuits_equivalent,
    phase_distance,
    routed_equivalent,
    unitaries_equivalent,
)
from repro.circuits.library import (
    bernstein_vazirani,
    cuccaro_adder,
    ghz_circuit,
    qaoa_circuit,
    qft_adder,
    qft_circuit,
    random_two_qubit_circuit,
)
from repro.circuits.scheduling import ScheduledCircuit, ScheduledOperation, schedule_asap

__all__ = [
    "Gate",
    "QuantumCircuit",
    "DAGCircuit",
    "DAGNode",
    "assert_circuits_equivalent",
    "circuits_equivalent",
    "phase_distance",
    "routed_equivalent",
    "unitaries_equivalent",
    "bernstein_vazirani",
    "cuccaro_adder",
    "ghz_circuit",
    "qaoa_circuit",
    "qft_adder",
    "qft_circuit",
    "random_two_qubit_circuit",
    "ScheduledCircuit",
    "ScheduledOperation",
    "schedule_asap",
]
