"""ASAP scheduling of circuits with per-gate durations.

The coherence-limited fidelity model of the paper needs, for every qubit, the
time between the start of its first gate and the end of its last gate.  This
module turns an ordered gate list plus a duration function into exactly that:
an as-soon-as-possible schedule with per-qubit busy intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.circuits.circuit import Gate, QuantumCircuit


@dataclass(frozen=True)
class ScheduledOperation:
    """One gate placed on the time axis."""

    gate: Gate
    start: float
    duration: float

    @property
    def end(self) -> float:
        """Completion time of the operation."""
        return self.start + self.duration


@dataclass
class ScheduledCircuit:
    """An ASAP-scheduled circuit."""

    n_qubits: int
    operations: list[ScheduledOperation]

    @property
    def total_duration(self) -> float:
        """Makespan of the schedule."""
        return max((op.end for op in self.operations), default=0.0)

    def qubit_busy_spans(self) -> dict[int, float]:
        """Per-qubit interval from first gate start to last gate end.

        Qubits that never participate in a gate are omitted (they contribute
        no decoherence in the paper's model).
        """
        first: dict[int, float] = {}
        last: dict[int, float] = {}
        for op in self.operations:
            for q in op.gate.qubits:
                if q not in first or op.start < first[q]:
                    first[q] = op.start
                if q not in last or op.end > last[q]:
                    last[q] = op.end
        return {q: last[q] - first[q] for q in first}

    def qubit_active_durations(self) -> dict[int, float]:
        """Per-qubit total time actually spent inside gates (no idling)."""
        active: dict[int, float] = {}
        for op in self.operations:
            for q in op.gate.qubits:
                active[q] = active.get(q, 0.0) + op.duration
        return active

    def operations_on(self, qubit: int) -> list[ScheduledOperation]:
        """All scheduled operations touching a given qubit, in time order."""
        ops = [op for op in self.operations if qubit in op.gate.qubits]
        return sorted(ops, key=lambda op: op.start)


def schedule_asap(
    circuit: QuantumCircuit | Iterable[Gate],
    duration_fn: Callable[[Gate], float],
    n_qubits: int | None = None,
) -> ScheduledCircuit:
    """Greedy as-soon-as-possible scheduling.

    Every gate starts as soon as all its qubits are free; gates on disjoint
    qubits therefore overlap, exactly as a real control system would execute
    them.
    """
    if isinstance(circuit, QuantumCircuit):
        gates: Sequence[Gate] = circuit.gates
        width = circuit.n_qubits
    else:
        gates = list(circuit)
        width = n_qubits if n_qubits is not None else (
            max((max(g.qubits) for g in gates), default=-1) + 1
        )
    qubit_free_at = [0.0] * width
    operations: list[ScheduledOperation] = []
    for gate in gates:
        duration = float(duration_fn(gate))
        if duration < 0:
            raise ValueError(f"negative duration for gate {gate}")
        start = max((qubit_free_at[q] for q in gate.qubits), default=0.0)
        operations.append(ScheduledOperation(gate=gate, start=start, duration=duration))
        for q in gate.qubits:
            qubit_free_at[q] = start + duration
    return ScheduledCircuit(n_qubits=width, operations=operations)
