"""Unitary-equivalence checks for small circuits (the optimizer's proof system).

The block-consolidation optimizer rewrites routed circuits, so "correct
output" is no longer "the same gate list" -- it is "the same unitary up to a
global phase".  This module is the dense-contraction harness behind every
such check: circuits of at most ``max_qubits`` (default 10) qubits are
contracted to full ``2^n x 2^n`` unitaries and compared via the phase-blind
fidelity ``|tr(U^dag V)| / dim``.

Three levels of check:

* :func:`unitaries_equivalent` -- two explicit matrices, up to global phase.
* :func:`circuits_equivalent` / :func:`assert_circuits_equivalent` -- two
  same-width circuits (e.g. the routed circuit before and after the
  optimization pass).
* :func:`routed_equivalent` -- a routed physical circuit against its logical
  source circuit, accounting for the initial layout embedding and the net
  wire permutation of the inserted SWAPs.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QuantumCircuit


def phase_distance(u: np.ndarray, v: np.ndarray) -> float:
    """``1 - |tr(U^dag V)| / dim``: zero iff ``U = e^{i phi} V``.

    Both matrices must be unitary and of equal dimension; the value is the
    (one minus) phase-blind process overlap, so it is symmetric and basis
    independent.
    """
    u = np.asarray(u, dtype=complex)
    v = np.asarray(v, dtype=complex)
    if u.shape != v.shape or u.ndim != 2 or u.shape[0] != u.shape[1]:
        raise ValueError(f"incompatible shapes {u.shape} and {v.shape}")
    dim = u.shape[0]
    return float(1.0 - abs(np.trace(u.conj().T @ v)) / dim)


def unitaries_equivalent(u: np.ndarray, v: np.ndarray, atol: float = 1e-7) -> bool:
    """True iff the two unitaries agree up to a global phase."""
    return phase_distance(u, v) <= atol


def circuits_equivalent(
    a: QuantumCircuit,
    b: QuantumCircuit,
    atol: float = 1e-7,
    max_qubits: int = 10,
) -> bool:
    """True iff two same-width circuits implement the same unitary up to phase.

    Contracts both circuits densely, so it refuses widths above
    ``max_qubits`` (the harness is a proof system for tests and benches, not
    a simulator).
    """
    if a.n_qubits != b.n_qubits:
        raise ValueError(
            f"circuit widths differ: {a.n_qubits} vs {b.n_qubits} qubits"
        )
    return unitaries_equivalent(
        a.unitary(max_qubits=max_qubits), b.unitary(max_qubits=max_qubits), atol=atol
    )


def assert_circuits_equivalent(
    a: QuantumCircuit,
    b: QuantumCircuit,
    atol: float = 1e-7,
    max_qubits: int = 10,
    context: str = "",
) -> None:
    """Raise ``AssertionError`` with the phase distance when inequivalent."""
    if a.n_qubits != b.n_qubits:
        raise AssertionError(
            f"circuit widths differ: {a.n_qubits} vs {b.n_qubits} qubits"
            + (f" ({context})" if context else "")
        )
    distance = phase_distance(
        a.unitary(max_qubits=max_qubits), b.unitary(max_qubits=max_qubits)
    )
    if distance > atol:
        raise AssertionError(
            f"circuits are not unitary-equivalent: phase distance {distance:.3e} "
            f"> {atol:.1e}" + (f" ({context})" if context else "")
        )


def embed_source(
    source: QuantumCircuit, initial_layout: dict[int, int], n_physical: int
) -> QuantumCircuit:
    """The source circuit re-addressed onto physical wires via a layout."""
    embedded = QuantumCircuit(n_physical, name=f"{source.name}_embedded")
    for gate in source.gates:
        embedded.append(
            gate.with_qubits(*(initial_layout[q] for q in gate.qubits))
        )
    return embedded


def _routing_swap_permutation(
    source: QuantumCircuit,
    routed: QuantumCircuit,
    initial_layout: dict[int, int],
    max_qubits: int,
) -> np.ndarray:
    """Unitary of the net wire permutation of the *routing-inserted* SWAPs.

    A routed ``swap`` gate is ambiguous: it is either a source gate the user
    wrote (QFT ends with logical swaps, for example) or a wire exchange the
    router inserted.  Only the latter belong in ``Pi_net``, so this walks the
    routed gate stream while replaying the source program through the evolving
    layout: a routed gate matching the next pending source gate on its wires
    is a source gate; any other ``swap`` is a routing insertion and updates
    the layout.  Raises ``ValueError`` when the streams cannot be aligned.
    """
    phys_of = dict(initial_layout)
    log_on = {p: q for q, p in initial_layout.items()}
    # Per-logical-qubit queues of source gate indices, consumed in order.
    order: dict[int, list[int]] = {q: [] for q in range(source.n_qubits)}
    for index, gate in enumerate(source.gates):
        for q in gate.qubits:
            order[q].append(index)
    pointer = {q: 0 for q in range(source.n_qubits)}

    inserted = QuantumCircuit(routed.n_qubits, name="routing_swaps")
    for gate in routed.gates:
        logicals = [log_on.get(w) for w in gate.qubits]
        pending = None
        if all(q is not None for q in logicals):
            indices = {
                order[q][pointer[q]] for q in logicals if pointer[q] < len(order[q])
            }
            if len(indices) == 1 and len(logicals) == len(gate.qubits):
                candidate = source.gates[next(iter(indices))]
                expected = tuple(phys_of[q] for q in candidate.qubits)
                if (
                    candidate.name == gate.name
                    and candidate.params == gate.params
                    and expected == gate.qubits
                ):
                    pending = candidate
        if pending is not None:
            for q in pending.qubits:
                pointer[q] += 1
            continue
        if gate.name != "swap":
            raise ValueError(
                f"cannot align routed gate {gate.name}{gate.qubits} with the "
                "source program (is the layout the one routing used?)"
            )
        inserted.append(gate)
        a, b = gate.qubits
        la, lb = log_on.get(a), log_on.get(b)
        log_on[a], log_on[b] = lb, la
        if la is not None:
            phys_of[la] = b
        if lb is not None:
            phys_of[lb] = a
    leftovers = [q for q, p in pointer.items() if p < len(order[q])]
    if leftovers:
        raise ValueError(
            f"routed circuit ended before source gates on qubits {leftovers} "
            "were matched"
        )
    return inserted.unitary(max_qubits=max_qubits)


def routed_equivalent(
    source: QuantumCircuit,
    routed: QuantumCircuit,
    initial_layout: dict[int, int],
    atol: float = 1e-7,
    max_qubits: int = 10,
) -> bool:
    """Check a routed physical circuit against its logical source.

    Routing embeds the source through ``initial_layout`` and interleaves SWAP
    gates; commuting every SWAP to the end gives the exact identity

    ``U_routed = Pi_net . U_source_embedded``

    where ``Pi_net`` is the composition of the inserted SWAPs' wire
    permutations.  This check requires the SWAPs to still be *literal*
    ``swap`` gates, i.e. it applies to the router's output **before** block
    consolidation (the optimizer's own before/after equivalence is checked
    separately by :func:`circuits_equivalent`, and the two checks chain).
    """
    if any(g.name == "unitary2q" for g in routed.gates):
        raise ValueError(
            "routed_equivalent needs literal swap gates; run it on the "
            "pre-optimization routed circuit (then chain with "
            "circuits_equivalent for the optimized one)"
        )
    reference = _routing_swap_permutation(
        source, routed, initial_layout, max_qubits
    ) @ embed_source(source, initial_layout, routed.n_qubits).unitary(
        max_qubits=max_qubits
    )
    return unitaries_equivalent(
        routed.unitary(max_qubits=max_qubits), reference, atol=atol
    )
