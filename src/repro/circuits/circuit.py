"""A minimal gate-level quantum circuit IR.

The IR is intentionally small: a circuit is an ordered list of named gates on
integer qubits with optional real parameters.  Matrices for the supported
gates are available through :meth:`Gate.matrix`, and small circuits can be
turned into a full unitary for testing with :meth:`QuantumCircuit.unitary`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.gates.constants import (
    CNOT,
    CZ,
    HADAMARD,
    IDENTITY_1Q,
    ISWAP,
    PAULI_X,
    PAULI_Y,
    PAULI_Z,
    S_GATE,
    SQRT_ISWAP,
    SWAP,
    T_GATE,
)
from repro.gates.single_qubit import rx, ry, rz, u3
from repro.gates.two_qubit import controlled_phase, rzz

#: Names of gates that act on two qubits.
TWO_QUBIT_GATE_NAMES = frozenset(
    {"cx", "cz", "swap", "iswap", "sqrt_iswap", "cp", "rzz", "unitary2q"}
)

#: Names of gates that act on one qubit.
ONE_QUBIT_GATE_NAMES = frozenset(
    {"h", "x", "y", "z", "s", "t", "sdg", "tdg", "rx", "ry", "rz", "u3", "id"}
)


@dataclass(frozen=True)
class Gate:
    """A named gate applied to specific qubits.

    Attributes:
        name: lower-case gate name (see ``ONE_QUBIT_GATE_NAMES`` /
            ``TWO_QUBIT_GATE_NAMES``).
        qubits: qubit indices the gate acts on, in gate order (control first
            for ``cx`` and ``cp``).
        params: real gate parameters (rotation angles).
    """

    name: str
    qubits: tuple[int, ...]
    params: tuple[float, ...] = ()

    @property
    def n_qubits(self) -> int:
        """Number of qubits the gate touches."""
        return len(self.qubits)

    @property
    def is_two_qubit(self) -> bool:
        """True for two-qubit gates."""
        return self.name in TWO_QUBIT_GATE_NAMES

    def matrix(self) -> np.ndarray:
        """The gate's unitary matrix (2x2 or 4x4)."""
        name = self.name
        if name == "h":
            return HADAMARD
        if name == "x":
            return PAULI_X
        if name == "y":
            return PAULI_Y
        if name == "z":
            return PAULI_Z
        if name == "s":
            return S_GATE
        if name == "sdg":
            return S_GATE.conj().T
        if name == "t":
            return T_GATE
        if name == "tdg":
            return T_GATE.conj().T
        if name == "id":
            return IDENTITY_1Q
        if name == "rx":
            return rx(self.params[0])
        if name == "ry":
            return ry(self.params[0])
        if name == "rz":
            return rz(self.params[0])
        if name == "u3":
            return u3(*self.params)
        if name == "cx":
            return CNOT
        if name == "cz":
            return CZ
        if name == "swap":
            return SWAP
        if name == "iswap":
            return ISWAP
        if name == "sqrt_iswap":
            return SQRT_ISWAP
        if name == "cp":
            return controlled_phase(self.params[0])
        if name == "rzz":
            return rzz(self.params[0])
        if name == "unitary2q":
            if len(self.params) != 32:
                raise ValueError(
                    "unitary2q stores a 4x4 complex matrix as 32 interleaved "
                    f"real/imag floats, got {len(self.params)} params"
                )
            values = np.asarray(self.params, dtype=float)
            return (values[0::2] + 1j * values[1::2]).reshape(4, 4)
        raise ValueError(f"no matrix known for gate {self.name!r}")

    @staticmethod
    def unitary2q(matrix: np.ndarray, qubits: tuple[int, int]) -> "Gate":
        """Build an opaque two-qubit gate from an explicit 4x4 unitary.

        The matrix is stored losslessly in ``params`` as 32 interleaved
        real/imag floats (row-major), so the gate stays a frozen, hashable,
        picklable dataclass; :meth:`matrix` rebuilds the exact array.
        """
        array = np.asarray(matrix, dtype=complex)
        if array.shape != (4, 4):
            raise ValueError(f"unitary2q needs a 4x4 matrix, got {array.shape}")
        flat = array.reshape(-1)
        params = tuple(
            float(part) for entry in flat for part in (entry.real, entry.imag)
        )
        return Gate("unitary2q", (int(qubits[0]), int(qubits[1])), params)

    def with_qubits(self, *qubits: int) -> "Gate":
        """Copy of the gate acting on different qubits."""
        return Gate(self.name, tuple(qubits), self.params)


class QuantumCircuit:
    """An ordered list of gates on ``n_qubits`` qubits."""

    def __init__(self, n_qubits: int, name: str = ""):
        if n_qubits < 1:
            raise ValueError("a circuit needs at least one qubit")
        self.n_qubits = n_qubits
        self.name = name
        self.gates: list[Gate] = []

    # -- construction ---------------------------------------------------------

    def append(self, gate: Gate) -> "QuantumCircuit":
        """Append a pre-built gate, validating its qubit indices."""
        for q in gate.qubits:
            if not 0 <= q < self.n_qubits:
                raise ValueError(f"qubit {q} out of range for {self.n_qubits}-qubit circuit")
        if len(set(gate.qubits)) != len(gate.qubits):
            raise ValueError(f"gate {gate.name} repeats a qubit: {gate.qubits}")
        self.gates.append(gate)
        return self

    def add(self, name: str, qubits: Iterable[int], params: Iterable[float] = ()) -> "QuantumCircuit":
        """Append a gate by name."""
        return self.append(Gate(name, tuple(qubits), tuple(params)))

    # Single-qubit helpers.
    def h(self, q: int) -> "QuantumCircuit":
        return self.add("h", [q])

    def x(self, q: int) -> "QuantumCircuit":
        return self.add("x", [q])

    def y(self, q: int) -> "QuantumCircuit":
        return self.add("y", [q])

    def z(self, q: int) -> "QuantumCircuit":
        return self.add("z", [q])

    def s(self, q: int) -> "QuantumCircuit":
        return self.add("s", [q])

    def t(self, q: int) -> "QuantumCircuit":
        return self.add("t", [q])

    def tdg(self, q: int) -> "QuantumCircuit":
        return self.add("tdg", [q])

    def rx(self, theta: float, q: int) -> "QuantumCircuit":
        return self.add("rx", [q], [theta])

    def ry(self, theta: float, q: int) -> "QuantumCircuit":
        return self.add("ry", [q], [theta])

    def rz(self, theta: float, q: int) -> "QuantumCircuit":
        return self.add("rz", [q], [theta])

    # Two-qubit helpers.
    def cx(self, control: int, target: int) -> "QuantumCircuit":
        return self.add("cx", [control, target])

    def cz(self, a: int, b: int) -> "QuantumCircuit":
        return self.add("cz", [a, b])

    def swap(self, a: int, b: int) -> "QuantumCircuit":
        return self.add("swap", [a, b])

    def cp(self, phi: float, control: int, target: int) -> "QuantumCircuit":
        return self.add("cp", [control, target], [phi])

    def rzz(self, theta: float, a: int, b: int) -> "QuantumCircuit":
        return self.add("rzz", [a, b], [theta])

    def ccx(self, control1: int, control2: int, target: int) -> "QuantumCircuit":
        """Toffoli gate, expanded into the standard 6-CNOT construction.

        Benchmarks are specified at the 1Q/2Q gate level (as in the paper), so
        three-qubit gates are expanded eagerly.
        """
        c1, c2, t = control1, control2, target
        self.h(t)
        self.cx(c2, t)
        self.tdg(t)
        self.cx(c1, t)
        self.t(t)
        self.cx(c2, t)
        self.tdg(t)
        self.cx(c1, t)
        self.t(c2)
        self.t(t)
        self.h(t)
        self.cx(c1, c2)
        self.t(c1)
        self.tdg(c2)
        self.cx(c1, c2)
        return self

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self.gates)

    def two_qubit_gates(self) -> list[Gate]:
        """All two-qubit gates in order."""
        return [g for g in self.gates if g.is_two_qubit]

    def count_ops(self) -> dict[str, int]:
        """Histogram of gate names."""
        counts: dict[str, int] = {}
        for gate in self.gates:
            counts[gate.name] = counts.get(gate.name, 0) + 1
        return counts

    def depth(self) -> int:
        """Circuit depth counting every gate as one time step."""
        frontier = [0] * self.n_qubits
        depth = 0
        for gate in self.gates:
            level = max(frontier[q] for q in gate.qubits) + 1
            for q in gate.qubits:
                frontier[q] = level
            depth = max(depth, level)
        return depth

    def two_qubit_depth(self) -> int:
        """Depth counting only two-qubit gates."""
        frontier = [0] * self.n_qubits
        depth = 0
        for gate in self.gates:
            if not gate.is_two_qubit:
                continue
            level = max(frontier[q] for q in gate.qubits) + 1
            for q in gate.qubits:
                frontier[q] = level
            depth = max(depth, level)
        return depth

    def copy(self) -> "QuantumCircuit":
        """Shallow copy (gates are immutable)."""
        new = QuantumCircuit(self.n_qubits, self.name)
        new.gates = list(self.gates)
        return new

    def to_dag(self) -> "DAGCircuit":  # noqa: F821 -- forward ref, see circuits/dag.py
        """The circuit as a qubit-wire dependency DAG (lossless round-trip)."""
        from repro.circuits.dag import DAGCircuit

        return DAGCircuit.from_circuit(self)

    def compose(self, other: "QuantumCircuit") -> "QuantumCircuit":
        """Append another circuit (same width) to this one, in place."""
        if other.n_qubits != self.n_qubits:
            raise ValueError("circuit widths differ")
        for gate in other.gates:
            self.append(gate)
        return self

    def inverse(self) -> "QuantumCircuit":
        """Inverse circuit (reverses order and inverts each gate).

        Only gates with simple inverses are supported; parameterised gates
        negate their angle, self-inverse gates are kept, ``s``/``t`` map to
        their daggers.
        """
        inv = QuantumCircuit(self.n_qubits, f"{self.name}_inv" if self.name else "")
        mapping = {"s": "sdg", "sdg": "s", "t": "tdg", "tdg": "t"}
        for gate in reversed(self.gates):
            if gate.name in {"rx", "ry", "rz", "cp", "rzz"}:
                inv.add(gate.name, gate.qubits, [-p for p in gate.params])
            elif gate.name in mapping:
                inv.add(mapping[gate.name], gate.qubits)
            elif gate.name in {"h", "x", "y", "z", "cx", "cz", "swap", "id"}:
                inv.add(gate.name, gate.qubits)
            else:
                raise ValueError(f"cannot invert gate {gate.name!r}")
        return inv

    # -- simulation (for tests and small examples) -------------------------------

    def unitary(self, max_qubits: int = 10) -> np.ndarray:
        """Full unitary of the circuit (little circuits only).

        Qubit 0 is the most significant bit of the state index.
        """
        if self.n_qubits > max_qubits:
            raise ValueError(
                f"refusing to build a dense unitary on {self.n_qubits} qubits"
            )
        dim = 2**self.n_qubits
        total = np.eye(dim, dtype=complex)
        for gate in self.gates:
            total = self._embed(gate) @ total
        return total

    def _embed(self, gate: Gate) -> np.ndarray:
        """Embed a 1- or 2-qubit gate matrix into the full Hilbert space."""
        n = self.n_qubits
        dim = 2**n
        matrix = gate.matrix()
        embedded = np.zeros((dim, dim), dtype=complex)
        if gate.n_qubits == 1:
            (q,) = gate.qubits
            for index in range(dim):
                bit = (index >> (n - 1 - q)) & 1
                for new_bit in range(2):
                    amplitude = matrix[new_bit, bit]
                    if amplitude == 0:
                        continue
                    new_index = index & ~(1 << (n - 1 - q)) | (new_bit << (n - 1 - q))
                    embedded[new_index, index] += amplitude
            return embedded
        if gate.n_qubits == 2:
            q0, q1 = gate.qubits
            for index in range(dim):
                b0 = (index >> (n - 1 - q0)) & 1
                b1 = (index >> (n - 1 - q1)) & 1
                col = b0 * 2 + b1
                for row in range(4):
                    amplitude = matrix[row, col]
                    if amplitude == 0:
                        continue
                    nb0, nb1 = row >> 1, row & 1
                    new_index = index
                    new_index = new_index & ~(1 << (n - 1 - q0)) | (nb0 << (n - 1 - q0))
                    new_index = new_index & ~(1 << (n - 1 - q1)) | (nb1 << (n - 1 - q1))
                    embedded[new_index, index] += amplitude
            return embedded
        raise ValueError("only 1- and 2-qubit gates can be embedded")

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<QuantumCircuit{label}: {self.n_qubits} qubits, {len(self.gates)} gates>"
