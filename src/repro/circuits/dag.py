"""DAG form of the circuit IR: nodes are gates, edges are qubit wires.

A :class:`DAGCircuit` is built from a :class:`~repro.circuits.circuit.QuantumCircuit`
by walking the flat gate list once and connecting each gate to the previous
gate on every qubit it touches (the "last writer" per wire).  Two invariants
make the representation useful to the optimizer:

* **Lossless round-trip** -- ``DAGCircuit.from_circuit(c).to_circuit()``
  reproduces ``c``'s gate list *exactly*.  The original gate order is itself
  a topological order of the DAG, and :meth:`to_circuit` schedules ready
  nodes by their smallest original index, so independent gates keep the
  seeded order they were generated in.
* **Plain data** -- nodes, predecessor and successor lists are plain tuples
  and dicts of ints, so a DAG pickles deterministically (process-pool
  dispatch) and equality is structural.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.circuits.circuit import Gate, QuantumCircuit


@dataclass(frozen=True)
class DAGNode:
    """One gate in the DAG, tagged with its original list index."""

    index: int
    gate: Gate


@dataclass
class DAGCircuit:
    """Qubit-wire dependency DAG over an ordered gate list.

    Attributes:
        n_qubits: circuit width.
        name: circuit name (carried through the round-trip).
        nodes: gates in original order, each tagged with its index.
        predecessors: ``index -> sorted tuple`` of node indices that must run
            before it (the previous gate on each of its qubits).
        successors: transpose of ``predecessors``.
    """

    n_qubits: int
    name: str = ""
    nodes: list[DAGNode] = field(default_factory=list)
    predecessors: dict[int, tuple[int, ...]] = field(default_factory=dict)
    successors: dict[int, tuple[int, ...]] = field(default_factory=dict)

    @classmethod
    def from_circuit(cls, circuit: QuantumCircuit) -> "DAGCircuit":
        """Build the wire-dependency DAG from a flat circuit."""
        dag = cls(n_qubits=circuit.n_qubits, name=circuit.name)
        last_on_wire: dict[int, int] = {}
        succ_lists: dict[int, list[int]] = {}
        for index, gate in enumerate(circuit.gates):
            preds: list[int] = []
            for qubit in gate.qubits:
                previous = last_on_wire.get(qubit)
                if previous is not None and previous not in preds:
                    preds.append(previous)
                last_on_wire[qubit] = index
            dag.nodes.append(DAGNode(index=index, gate=gate))
            dag.predecessors[index] = tuple(sorted(preds))
            succ_lists[index] = []
            for pred in preds:
                succ_lists[pred].append(index)
        dag.successors = {index: tuple(succs) for index, succs in succ_lists.items()}
        return dag

    def to_circuit(self) -> QuantumCircuit:
        """Rebuild the flat circuit: ready nodes emit in original-index order.

        Since the original order is a valid topological order, the output gate
        list is exactly the input gate list -- independent gates do not swap.
        """
        circuit = QuantumCircuit(self.n_qubits, self.name)
        remaining = {node.index: len(self.predecessors[node.index]) for node in self.nodes}
        gate_of = {node.index: node.gate for node in self.nodes}
        ready = [index for index, count in remaining.items() if count == 0]
        heapq.heapify(ready)
        emitted = 0
        while ready:
            index = heapq.heappop(ready)
            circuit.append(gate_of[index])
            emitted += 1
            for succ in self.successors[index]:
                remaining[succ] -= 1
                if remaining[succ] == 0:
                    heapq.heappush(ready, succ)
        if emitted != len(self.nodes):
            raise ValueError("cycle in DAG: not all nodes were emitted")
        return circuit

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def topological_order(self) -> list[DAGNode]:
        """Nodes in emission order (original index order; see :meth:`to_circuit`)."""
        return sorted(self.nodes, key=lambda node: node.index)

    def front_layer(self) -> list[DAGNode]:
        """Nodes with no predecessors (the executable frontier)."""
        return [node for node in self.nodes if not self.predecessors[node.index]]

    def two_qubit_nodes(self) -> list[DAGNode]:
        """Nodes whose gate acts on two qubits, in original order."""
        return [node for node in self.topological_order() if node.gate.is_two_qubit]

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        edges = sum(len(preds) for preds in self.predecessors.values())
        return (
            f"<DAGCircuit{label}: {self.n_qubits} qubits, "
            f"{len(self.nodes)} nodes, {edges} wire edges>"
        )
