"""Benchmark circuit generators (Section VIII-C / Table II).

The generators mirror the benchmarks of the paper's case study:

* ``bv n`` -- Bernstein-Vazirani on ``n`` qubits (``n - 1`` secret bits plus
  one ancilla);
* ``qft n`` -- the quantum Fourier transform;
* ``cuccaro n`` -- the Cuccaro ripple-carry adder on ``n`` qubits total;
* ``qaoa p n`` -- one round (p = 1) of QAOA on an Erdos-Renyi graph with edge
  probability ``p``;
* ``qft_adder n`` -- the Draper/Ruiz-Perez QFT-based adder.
"""

from __future__ import annotations

import math

import numpy as np
import networkx as nx

from repro.circuits.circuit import QuantumCircuit


def bernstein_vazirani(n_qubits: int, secret: str | None = None) -> QuantumCircuit:
    """Bernstein-Vazirani circuit on ``n_qubits`` (last qubit is the ancilla).

    ``secret`` is a bit string of length ``n_qubits - 1``; the default is the
    all-ones string, which maximises the number of CNOTs (the hardest case
    for routing and the one consistent with the paper's scaling study).
    """
    if n_qubits < 2:
        raise ValueError("Bernstein-Vazirani needs at least two qubits")
    n_secret = n_qubits - 1
    secret = "1" * n_secret if secret is None else secret
    if len(secret) != n_secret or any(ch not in "01" for ch in secret):
        raise ValueError(f"secret must be a bit string of length {n_secret}")
    circuit = QuantumCircuit(n_qubits, name=f"bv_{n_qubits}")
    ancilla = n_qubits - 1
    for q in range(n_secret):
        circuit.h(q)
    circuit.x(ancilla)
    circuit.h(ancilla)
    for q, bit in enumerate(secret):
        if bit == "1":
            circuit.cx(q, ancilla)
    for q in range(n_secret):
        circuit.h(q)
    circuit.h(ancilla)
    return circuit


def qft_circuit(n_qubits: int, do_swaps: bool = True) -> QuantumCircuit:
    """Quantum Fourier transform on ``n_qubits``.

    Uses the textbook construction: a Hadamard on each qubit followed by
    controlled-phase rotations of angle ``pi / 2^k``, with optional final
    SWAPs to restore qubit ordering.
    """
    if n_qubits < 1:
        raise ValueError("QFT needs at least one qubit")
    circuit = QuantumCircuit(n_qubits, name=f"qft_{n_qubits}")
    for target in range(n_qubits):
        circuit.h(target)
        for offset, control in enumerate(range(target + 1, n_qubits), start=1):
            circuit.cp(math.pi / (2**offset), control, target)
    if do_swaps:
        for q in range(n_qubits // 2):
            circuit.swap(q, n_qubits - 1 - q)
    return circuit


def qft_adder(n_bits: int) -> QuantumCircuit:
    """Draper-style adder |a>|b> -> |a>|a+b> using the QFT (Ruiz-Perez et al.).

    Uses ``2 * n_bits`` qubits: the first register holds ``a``, the second is
    Fourier transformed, phase-rotated conditionally on ``a`` and transformed
    back.
    """
    if n_bits < 1:
        raise ValueError("adder needs at least one bit per register")
    n_qubits = 2 * n_bits
    circuit = QuantumCircuit(n_qubits, name=f"qft_adder_{n_qubits}")
    a_register = list(range(n_bits))
    b_register = list(range(n_bits, 2 * n_bits))

    qft_part = qft_circuit(n_bits, do_swaps=False)
    for gate in qft_part.gates:
        circuit.add(gate.name, [b_register[q] for q in gate.qubits], gate.params)

    for i, a_qubit in enumerate(a_register):
        for j, b_qubit in enumerate(b_register):
            k = i - j
            if k < 0:
                continue
            circuit.cp(math.pi / (2**k), a_qubit, b_qubit)

    inverse_qft = qft_circuit(n_bits, do_swaps=False).inverse()
    for gate in inverse_qft.gates:
        circuit.add(gate.name, [b_register[q] for q in gate.qubits], gate.params)
    return circuit


def cuccaro_adder(n_qubits: int) -> QuantumCircuit:
    """Cuccaro ripple-carry adder using ``n_qubits`` qubits in total.

    The construction uses two ``n``-bit registers, one carry-in and one
    carry-out qubit (``n_qubits = 2n + 2``); ``n_qubits`` not of that form is
    rounded down to the largest adder that fits, keeping the requested width
    (extra qubits stay idle), which matches how benchmark suites scale the
    "cuccaro n" circuits.
    """
    if n_qubits < 4:
        raise ValueError("the Cuccaro adder needs at least 4 qubits")
    n_bits = (n_qubits - 2) // 2
    circuit = QuantumCircuit(n_qubits, name=f"cuccaro_{n_qubits}")
    carry_in = 0
    a_register = [1 + 2 * i for i in range(n_bits)]
    b_register = [2 + 2 * i for i in range(n_bits)]
    carry_out = 2 * n_bits + 1

    def maj(c: int, b: int, a: int) -> None:
        circuit.cx(a, b)
        circuit.cx(a, c)
        circuit.ccx(c, b, a)

    def uma(c: int, b: int, a: int) -> None:
        circuit.ccx(c, b, a)
        circuit.cx(a, c)
        circuit.cx(c, b)

    maj(carry_in, b_register[0], a_register[0])
    for i in range(1, n_bits):
        maj(a_register[i - 1], b_register[i], a_register[i])
    circuit.cx(a_register[n_bits - 1], carry_out)
    for i in reversed(range(1, n_bits)):
        uma(a_register[i - 1], b_register[i], a_register[i])
    uma(carry_in, b_register[0], a_register[0])
    return circuit


def qaoa_circuit(
    n_qubits: int,
    edge_probability: float = 0.1,
    gamma: float = 0.8,
    beta: float = 0.4,
    p_rounds: int = 1,
    seed: int = 7,
) -> QuantumCircuit:
    """One QAOA instance on an Erdos-Renyi graph (MaxCut cost Hamiltonian).

    The paper's benchmarks use ``p = 1`` and edge probabilities 0.1 and 0.33;
    the circuit is the usual alternation of a ZZ cost layer over the graph's
    edges and an RX mixer layer.
    """
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError("edge probability must be in [0, 1]")
    graph = nx.gnp_random_graph(n_qubits, edge_probability, seed=seed)
    circuit = QuantumCircuit(
        n_qubits, name=f"qaoa_{edge_probability}_{n_qubits}"
    )
    for q in range(n_qubits):
        circuit.h(q)
    for _ in range(p_rounds):
        for u, v in sorted(graph.edges()):
            circuit.rzz(2.0 * gamma, u, v)
        for q in range(n_qubits):
            circuit.rx(2.0 * beta, q)
    circuit.graph = graph  # type: ignore[attr-defined]
    return circuit


def ghz_circuit(n_qubits: int) -> QuantumCircuit:
    """A GHZ-state preparation circuit (used in examples and tests)."""
    circuit = QuantumCircuit(n_qubits, name=f"ghz_{n_qubits}")
    circuit.h(0)
    for q in range(1, n_qubits):
        circuit.cx(q - 1, q)
    return circuit


def random_two_qubit_circuit(
    n_qubits: int, n_gates: int, seed: int = 3
) -> QuantumCircuit:
    """A random circuit of CX/CZ/SWAP/CP gates on random pairs (test workload)."""
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(n_qubits, name=f"random_{n_qubits}_{n_gates}")
    names = ["cx", "cz", "swap", "cp"]
    for _ in range(n_gates):
        a, b = rng.choice(n_qubits, size=2, replace=False)
        name = names[int(rng.integers(len(names)))]
        if name == "cp":
            circuit.cp(float(rng.uniform(0.1, np.pi)), int(a), int(b))
        else:
            circuit.add(name, [int(a), int(b)])
        if rng.random() < 0.5:
            circuit.rz(float(rng.uniform(0, np.pi)), int(rng.integers(n_qubits)))
    return circuit
