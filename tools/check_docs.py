#!/usr/bin/env python
"""Doc CI checks: links resolve, fenced examples execute.

Two independent checks over ``README.md`` and ``docs/*.md``:

1. **Links** -- every relative markdown link ``[text](path)`` must resolve
   to an existing file (anchors and external ``http(s)``/``mailto`` links
   are skipped).  A renamed document or a typo in a cross-reference fails
   the build instead of 404-ing a reader.

2. **Examples** -- every fenced ``pycon`` block is executed with
   :mod:`doctest` (``ELLIPSIS`` and ``NORMALIZE_WHITESPACE`` enabled).  All
   fences of one file run as **one session** in order, sharing a namespace,
   so later examples can build on earlier ones -- which also keeps them
   cheap (one small device serves a whole document).  An example whose
   output drifted from the code fails the build instead of rotting.

Run from the repository root (CI's ``docs-check`` job and the tier-1
``tests/test_docs.py`` both do)::

    PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]

#: Markdown link targets: [text](target). Images ![alt](target) match too.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: Fenced pycon blocks (the only fence flavour doctest understands).
FENCE_RE = re.compile(r"```pycon\n(.*?)```", re.DOTALL)

DOCTEST_OPTIONS = doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE


def doc_files() -> list[Path]:
    """Every markdown file the checks cover."""
    return [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]


def _label(path: Path) -> str:
    """Repo-relative label when possible (tests may pass paths elsewhere)."""
    try:
        return str(path.relative_to(ROOT))
    except ValueError:
        return path.name


def check_links(path: Path) -> list[str]:
    """Broken relative links in one file, as readable failure strings."""
    failures = []
    for target in LINK_RE.findall(path.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        relative = target.split("#", 1)[0]  # strip an anchor suffix
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            failures.append(f"{_label(path)}: broken link -> {target}")
    return failures


def extract_session(path: Path) -> str:
    """All of a file's pycon fences concatenated into one doctest session."""
    return "\n".join(FENCE_RE.findall(path.read_text()))


def run_examples(path: Path) -> list[str]:
    """Execute one file's pycon session; returns readable failure strings."""
    session = extract_session(path)
    if not session.strip():
        return []
    parser = doctest.DocTestParser()
    test = parser.get_doctest(
        session, {"__name__": "__docs__"}, _label(path), str(path), 0
    )
    output: list[str] = []
    runner = doctest.DocTestRunner(optionflags=DOCTEST_OPTIONS)
    runner.run(test, out=output.append)
    if runner.failures or runner.tries == 0:
        detail = "".join(output).strip()
        label = f"{_label(path)}: {runner.failures}/{runner.tries} examples failed"
        return [f"{label}\n{detail}" if detail else label]
    return []


def main() -> int:
    failures: list[str] = []
    examples_run = 0
    for path in doc_files():
        if not path.exists():
            failures.append(f"missing documentation file: {path.relative_to(ROOT)}")
            continue
        failures.extend(check_links(path))
        session = extract_session(path)
        examples_run += session.count(">>>")
        failures.extend(run_examples(path))
    if failures:
        print("docs-check FAILED:\n", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}\n", file=sys.stderr)
        return 1
    print(
        f"docs-check OK: {len(doc_files())} files, links resolve, "
        f"{examples_run} doctest examples green"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
