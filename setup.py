"""Setup shim so editable installs work with older setuptools (no wheel pkg)."""
from setuptools import setup

setup()
