"""Benchmark: Fig. 7 -- the 10x10 device with alternating qubit frequencies."""

from repro.experiments.figures import figure7_device


def test_fig7_device(benchmark, config):
    data = benchmark(lambda: figure7_device(config))
    print(
        f"\n{data['n_qubits']} qubits, {data['n_edges']} edges, "
        f"{data['low_population_size']} low-frequency / {data['high_population_size']} "
        f"high-frequency qubits, mean pair detuning {data['mean_pair_detuning_ghz']:.3f} GHz"
    )
    assert data["low_population_size"] == data["high_population_size"]
    assert 1.7 < data["mean_pair_detuning_ghz"] < 2.3
