"""Benchmark: Fig. 5 -- trajectory stability over drive amplitude."""

from repro.experiments.figures import figure5_stability


def test_fig5_stability(benchmark):
    data = benchmark(figure5_stability)
    print(
        f"\nfirst-PE durations at xi = {data['amplitudes']}: "
        f"{[round(d, 2) for d in data['first_pe_durations_ns']]} ns; "
        f"speed ratio {data['speed_ratio']:.2f} (paper: ~2 when the amplitude doubles)"
    )
    assert abs(data["speed_ratio"] - 2.0) < 0.15
