"""Benchmark: Fig. 1 -- the Weyl chamber's named points and PE polyhedron."""

from repro.experiments.figures import figure1_weyl_points
from repro.weyl.chamber import chamber_volume_fraction
from repro.weyl.entangling_power import is_perfect_entangler


def test_fig1_weyl_points(benchmark):
    points = benchmark(figure1_weyl_points)
    print(f"\nWeyl chamber named points: {points}")
    assert points["CNOT"] == (0.5, 0.0, 0.0)
    assert points["SWAP"] == (0.5, 0.5, 0.5)


def test_fig1_perfect_entangler_volume(benchmark):
    fraction = benchmark(lambda: chamber_volume_fraction(is_perfect_entangler, 10000))
    print(f"\nperfect-entangler fraction of the chamber: {fraction:.3f} (theory: 0.5)")
    assert abs(fraction - 0.5) < 0.03
