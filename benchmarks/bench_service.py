"""Service benchmark: cold/warm throughput and the program-cache split.

Fires a deterministic workload (circuits x device seeds, each request
compiling under several strategies) at in-process
:class:`~repro.service.service.CompilationService` instances:

* **cold** -- a fresh service and empty caches, so every (device, strategy)
  cell pays for basis-gate selection and every request compiles;
* **warm** -- the same request list repeated against the now-hot service:
  repeats are served by the content-addressed program cache (the
  ``latency_split`` block separates cache-lookup time from dispatch time);
* **warm_nocache** -- the same repeat traffic against a second service with
  the program cache disabled (sharing the warm on-disk target cache), which
  isolates what the program-cache layer itself buys;
* **identity** -- every workload request is compiled on both services and
  the result documents are compared byte for byte: a cache hit must be
  indistinguishable from recompiling;
* **build** -- the cold end: one multi-edge target resolved with the
  vectorized batch scan + concurrent edge fan-out vs the scalar
  one-edge-at-a-time reference, asserting the targets are equal.

Emits ``BENCH_service.json``: per-phase throughput and latency percentiles,
the warm/cold and cache/no-cache speedups, program-cache hit rates and the
cold-build speedup.  The committed copy at ``benchmarks/BENCH_service.json``
is the CI perf baseline (``benchmarks/check_perf.py`` gates regressions
against it); refresh it by re-running this script from the repository
root::

    PYTHONPATH=src python benchmarks/bench_service.py \
        --output benchmarks/BENCH_service.json

The file is named ``bench_*`` (not ``test_*``) on purpose: pytest does not
collect it, CI runs it as a script and uploads the JSON artifact.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import tempfile
import time
from pathlib import Path

from repro.core.basis_selection import set_batch_scan
from repro.compiler.pipeline.target import build_target
from repro.device.device import default_edge_workers
from repro.fleet.devices import make_device
from repro.fleet.spec import TopologySpec
from repro.service import (
    CompilationService,
    LoadSpec,
    ServiceConfig,
    run_phase_inprocess,
)
from repro.synthesis.numerical import reset_synthesis_memo

DEFAULT_CIRCUITS = ("ghz_4", "bv_5", "qft_4", "cuccaro_6")
DEFAULT_SEEDS = (11, 12, 13)
BUILD_TOPOLOGY = "heavy_hex:2"
BUILD_STRATEGY = "criterion2"


def cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _results_digest(responses) -> str:
    """Order-independent digest over per-request result documents."""
    blob = sorted(
        (response.request.circuit, response.request.device_seed,
         json.dumps(response.results, sort_keys=True))
        for response in responses
    )
    return json.dumps(blob)


async def _compile_all(service: CompilationService, requests) -> list:
    return [await service.compile(request) for request in requests]


def bench_build() -> dict:
    """Cold target resolution: batched scan + edge fan-out vs scalar loop.

    Both builds start from a fresh device and an empty synthesis memo; the
    resulting targets must compare equal -- vectorization is a pure
    speedup, never a behaviour change.
    """
    spec = TopologySpec.parse(BUILD_TOPOLOGY)

    def build(batched: bool) -> tuple[float, object]:
        reset_synthesis_memo()
        device = make_device(spec, 11)
        previous = set_batch_scan(batched)
        try:
            started = time.perf_counter()
            target = build_target(device, BUILD_STRATEGY)
            target.complete(max_workers=None if batched else 1)
            elapsed = time.perf_counter() - started
        finally:
            set_batch_scan(previous)
        return elapsed, target

    reference_s, reference = build(batched=False)
    batched_s, batched = build(batched=True)
    reset_synthesis_memo()
    return {
        "topology": BUILD_TOPOLOGY,
        "strategy": BUILD_STRATEGY,
        "edges": len(reference.selections),
        "edge_workers": default_edge_workers(),
        "reference_s": reference_s,
        "batched_s": batched_s,
        "speedup": reference_s / batched_s if batched_s > 0 else 0.0,
        "identical": reference == batched,
    }


async def run_bench(args: argparse.Namespace, cache_dir: str | None) -> dict:
    """Cold, warm and no-cache phases plus the cold-build measurement."""
    spec = LoadSpec(
        circuits=tuple(args.circuits),
        topology=args.topology,
        device_seeds=tuple(args.device_seeds),
        strategies=tuple(args.strategies),
        mapping=args.mapping,
        repeats=1,
        concurrency=args.concurrency,
    )
    one_pass = spec.requests()
    config = ServiceConfig(
        cache_dir=cache_dir,
        executor=args.executor,
        max_workers=args.workers,
        batch_window_ms=args.batch_window_ms,
    )
    async with CompilationService(config) as service:
        cold = await run_phase_inprocess(
            service, one_pass, spec.concurrency, name="cold"
        )
        cold_cache = service.hot_targets.stats.as_dict()
        warm = await run_phase_inprocess(
            service, one_pass * args.warm_repeats, spec.concurrency, name="warm"
        )
        cached_responses = await _compile_all(service, one_pass)
        cache = service.hot_targets.as_dict()
        programs = service.programs.as_dict()
        metrics = service.metrics_snapshot()

    # The control: identical warm repeat traffic with the program cache off.
    # The shared cache_dir keeps the *target* layers warm, so the delta is
    # the program cache alone.
    nocache_config = ServiceConfig(
        cache_dir=cache_dir,
        executor=args.executor,
        max_workers=args.workers,
        batch_window_ms=args.batch_window_ms,
        program_cache=False,
    )
    async with CompilationService(nocache_config) as control:
        await run_phase_inprocess(
            control, one_pass, spec.concurrency, name="prewarm"
        )
        warm_nocache = await run_phase_inprocess(
            control,
            one_pass * args.warm_repeats,
            spec.concurrency,
            name="warm_nocache",
        )
        recompiled_responses = await _compile_all(control, one_pass)

    speedup = (
        warm["throughput_rps"] / cold["throughput_rps"]
        if cold["throughput_rps"] > 0
        else 0.0
    )
    warm_hits = sum(
        count
        for source, count in warm["program_sources"].items()
        if source.startswith("program-")
    )
    program_block = {
        "warm_hit_rate": warm_hits / warm["requests"] if warm["requests"] else 0.0,
        "speedup_vs_nocache": (
            warm["throughput_rps"] / warm_nocache["throughput_rps"]
            if warm_nocache["throughput_rps"] > 0
            else 0.0
        ),
        "byte_identical": (
            _results_digest(cached_responses)
            == _results_digest(recompiled_responses)
        ),
        **programs,
    }
    return {
        "benchmark": "service",
        "python": platform.python_version(),
        "cpus": cpu_count(),
        "workload": {
            "circuits": list(spec.circuits),
            "topology": spec.topology,
            "device_seeds": list(spec.device_seeds),
            "strategies": list(spec.strategies),
            "mapping": spec.mapping,
            "concurrency": spec.concurrency,
            "warm_repeats": args.warm_repeats,
            "executor": config.executor,
            "max_workers": config.max_workers,
            "batch_window_ms": config.batch_window_ms,
        },
        "cold": cold,
        "warm": warm,
        "warm_nocache": warm_nocache,
        "speedup_warm_over_cold": speedup,
        "program_cache": program_block,
        "build": bench_build(),
        "cache_after_cold": cold_cache,
        "cache": cache,
        "service_metrics": metrics,
    }


def main(argv: list[str] | None = None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--circuits",
        nargs="+",
        default=list(DEFAULT_CIRCUITS),
        help="fleet circuit names",
    )
    parser.add_argument("--topology", default="grid:3x3", help="device topology label")
    parser.add_argument(
        "--device-seeds",
        nargs="+",
        type=int,
        default=list(DEFAULT_SEEDS),
        help="device frequency seeds (one simulated device each)",
    )
    parser.add_argument(
        "--strategies",
        nargs="+",
        default=["baseline", "criterion2"],
        help="strategies each request compiles under",
    )
    parser.add_argument("--mapping", default="hop_count", help="mapping metric")
    parser.add_argument(
        "--concurrency", type=int, default=12, help="in-flight request cap"
    )
    parser.add_argument(
        "--warm-repeats",
        type=int,
        default=20,
        help="how many passes over the workload the warm phase makes",
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="dispatcher fan-out width"
    )
    parser.add_argument(
        "--executor", default="thread", help="dispatcher executor flavour"
    )
    parser.add_argument(
        "--batch-window-ms", type=float, default=2.0, help="coalescing window"
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="on-disk target cache (default: a throwaway temp dir)",
    )
    parser.add_argument(
        "--output",
        default="benchmarks/BENCH_service.json",
        help="where to write the JSON results",
    )
    args = parser.parse_args(argv)

    if args.cache_dir is not None:
        results = asyncio.run(run_bench(args, args.cache_dir))
    else:
        with tempfile.TemporaryDirectory(prefix="bench-service-") as tmp:
            results = asyncio.run(run_bench(args, tmp))

    path = Path(args.output)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(results, indent=2))

    for phase in (results["cold"], results["warm"], results["warm_nocache"]):
        latency = phase["latency_ms"]
        print(
            f"{phase['phase']:<12} {phase['requests']:>5d} requests "
            f"{phase['throughput_rps']:>8.1f} req/s "
            f"p50 {latency['p50']:>7.1f}ms p95 {latency['p95']:>7.1f}ms "
            f"({phase['errors']} errors)"
        )
    cache = results["cache"]
    program = results["program_cache"]
    build = results["build"]
    print(
        f"speedup (warm/cold): {results['speedup_warm_over_cold']:.1f}x; "
        f"cache: {cache['memory_hits']} memory hits, {cache['disk_hits']} disk "
        f"hits, {cache['builds']} builds"
    )
    print(
        f"program cache: hit rate {program['warm_hit_rate']:.2f}, "
        f"{program['speedup_vs_nocache']:.1f}x over no-cache, "
        f"byte-identical: {program['byte_identical']}"
    )
    print(
        f"cold build ({build['topology']}, {build['edges']} edges): "
        f"{build['reference_s']:.2f}s scalar vs {build['batched_s']:.2f}s "
        f"batched = {build['speedup']:.1f}x, identical: {build['identical']}"
    )
    print(f"\nWrote {path}")
    return results


if __name__ == "__main__":
    main()
