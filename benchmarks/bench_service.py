"""Service benchmark: cold-vs-warm throughput of the compilation service.

Fires a deterministic workload (circuits x device seeds, each request
compiling under several strategies) at an in-process
:class:`~repro.service.service.CompilationService` twice:

* **cold** -- a fresh service and an empty target cache, so every
  (device, strategy) cell pays for basis-gate selection;
* **warm** -- the same request list repeated against the now-hot service,
  so every target is served from the in-memory LRU.

Emits ``BENCH_service.json``: per-phase throughput and latency percentiles,
the warm/cold speedup, and the per-layer cache counters.  The committed copy
at ``benchmarks/BENCH_service.json`` is the CI perf baseline
(``benchmarks/check_perf.py`` gates regressions against it); refresh it by
re-running this script from the repository root::

    PYTHONPATH=src python benchmarks/bench_service.py \
        --output benchmarks/BENCH_service.json

The file is named ``bench_*`` (not ``test_*``) on purpose: pytest does not
collect it, CI runs it as a script and uploads the JSON artifact.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import tempfile
from pathlib import Path

from repro.service import (
    CompilationService,
    LoadSpec,
    ServiceConfig,
    run_phase_inprocess,
)

DEFAULT_CIRCUITS = ("ghz_4", "bv_5", "qft_4", "cuccaro_6")
DEFAULT_SEEDS = (11, 12, 13)


async def run_bench(args: argparse.Namespace, cache_dir: str | None) -> dict:
    """Cold phase then warm phase against one service; returns the document."""
    spec = LoadSpec(
        circuits=tuple(args.circuits),
        topology=args.topology,
        device_seeds=tuple(args.device_seeds),
        strategies=tuple(args.strategies),
        mapping=args.mapping,
        repeats=1,
        concurrency=args.concurrency,
    )
    one_pass = spec.requests()
    config = ServiceConfig(
        cache_dir=cache_dir,
        executor=args.executor,
        max_workers=args.workers,
        batch_window_ms=args.batch_window_ms,
    )
    async with CompilationService(config) as service:
        cold = await run_phase_inprocess(
            service, one_pass, spec.concurrency, name="cold"
        )
        cold_cache = service.hot_targets.stats.as_dict()
        warm = await run_phase_inprocess(
            service, one_pass * args.warm_repeats, spec.concurrency, name="warm"
        )
        cache = service.hot_targets.as_dict()
        metrics = service.metrics_snapshot()
    speedup = (
        warm["throughput_rps"] / cold["throughput_rps"]
        if cold["throughput_rps"] > 0
        else 0.0
    )
    return {
        "benchmark": "service",
        "python": platform.python_version(),
        "workload": {
            "circuits": list(spec.circuits),
            "topology": spec.topology,
            "device_seeds": list(spec.device_seeds),
            "strategies": list(spec.strategies),
            "mapping": spec.mapping,
            "concurrency": spec.concurrency,
            "warm_repeats": args.warm_repeats,
            "executor": config.executor,
            "max_workers": config.max_workers,
            "batch_window_ms": config.batch_window_ms,
        },
        "cold": cold,
        "warm": warm,
        "speedup_warm_over_cold": speedup,
        "cache_after_cold": cold_cache,
        "cache": cache,
        "service_metrics": metrics,
    }


def main(argv: list[str] | None = None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--circuits",
        nargs="+",
        default=list(DEFAULT_CIRCUITS),
        help="fleet circuit names",
    )
    parser.add_argument("--topology", default="grid:3x3", help="device topology label")
    parser.add_argument(
        "--device-seeds",
        nargs="+",
        type=int,
        default=list(DEFAULT_SEEDS),
        help="device frequency seeds (one simulated device each)",
    )
    parser.add_argument(
        "--strategies",
        nargs="+",
        default=["baseline", "criterion2"],
        help="strategies each request compiles under",
    )
    parser.add_argument("--mapping", default="hop_count", help="mapping metric")
    parser.add_argument(
        "--concurrency", type=int, default=12, help="in-flight request cap"
    )
    parser.add_argument(
        "--warm-repeats",
        type=int,
        default=20,
        help="how many passes over the workload the warm phase makes",
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="dispatcher fan-out width"
    )
    parser.add_argument(
        "--executor", default="thread", help="dispatcher executor flavour"
    )
    parser.add_argument(
        "--batch-window-ms", type=float, default=2.0, help="coalescing window"
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="on-disk target cache (default: a throwaway temp dir)",
    )
    parser.add_argument(
        "--output",
        default="benchmarks/BENCH_service.json",
        help="where to write the JSON results",
    )
    args = parser.parse_args(argv)

    if args.cache_dir is not None:
        results = asyncio.run(run_bench(args, args.cache_dir))
    else:
        with tempfile.TemporaryDirectory(prefix="bench-service-") as tmp:
            results = asyncio.run(run_bench(args, tmp))

    path = Path(args.output)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(results, indent=2))

    for phase in (results["cold"], results["warm"]):
        latency = phase["latency_ms"]
        print(
            f"{phase['phase']:<5} {phase['requests']:>5d} requests "
            f"{phase['throughput_rps']:>8.1f} req/s "
            f"p50 {latency['p50']:>7.1f}ms p95 {latency['p95']:>7.1f}ms "
            f"({phase['errors']} errors)"
        )
    cache = results["cache"]
    print(
        f"speedup (warm/cold): {results['speedup_warm_over_cold']:.1f}x; "
        f"cache: {cache['memory_hits']} memory hits, {cache['disk_hits']} disk "
        f"hits, {cache['builds']} builds"
    )
    print(f"\nWrote {path}")
    return results


if __name__ == "__main__":
    main()
