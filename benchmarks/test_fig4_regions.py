"""Benchmark: Fig. 4 -- Weyl-chamber feasibility regions and their volumes."""

from repro.experiments.figures import figure4_regions


def test_fig4_regions(benchmark):
    data = benchmark(lambda: figure4_regions(n_samples=15000))
    print(
        f"\nSWAP-in-3-layers feasible fraction: {data['swap3_feasible_fraction']:.3f} "
        f"(paper: 0.685); CNOT-in-2-layers: {data['cnot2_feasible_fraction']:.3f} (paper: 0.75)"
    )
    assert abs(data["swap3_feasible_fraction"] - 0.685) < 0.02
    assert abs(data["cnot2_feasible_fraction"] - 0.75) < 0.02
    assert abs(data["cnot2_feasible_fraction_exact"] - 0.75) < 1e-9
