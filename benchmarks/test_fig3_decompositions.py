"""Benchmark: Fig. 3 -- the decomposition circuit templates."""

from repro.experiments.figures import figure3_decompositions


def test_fig3_decompositions(benchmark):
    data = benchmark.pedantic(figure3_decompositions, iterations=1, rounds=1)
    print(
        f"\nSWAP from sqrt(iSWAP): {data['swap_from_sqrt_iswap_layers']} layers, "
        f"fidelity {data['swap_from_sqrt_iswap_fidelity']:.9f}; "
        f"CNOT: {data['cnot_from_sqrt_iswap_layers']} layers"
    )
    assert data["swap_from_sqrt_iswap_layers"] == 3
    assert data["cnot_from_sqrt_iswap_layers"] == 2
    assert data["swap_equals_three_cnots"]
