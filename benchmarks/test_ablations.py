"""Ablation benchmarks for the design choices called out in DESIGN.md.

1. Selection-criterion ablation: Criterion 2 vs Criterion 1 vs the extra
   "perfect entangler + SWAP-in-3" criterion mentioned in Section V-E.
2. Depth-prediction ablation: NuOp-style synthesis with and without the
   analytic layer-count skip (the paper's compile-time optimisation).
3. Single-qubit duration ablation: the 1Q/2Q duration ratio regime discussed
   at the end of Section VIII-D.
"""

import time

import numpy as np

from repro.circuits import bernstein_vazirani
from repro.compiler.basis_translation import TranslationOptions, translate_circuit
from repro.compiler.routing import SabreRouter
from repro.compiler.layout import greedy_subgraph_layout
from repro.gates import CNOT, SWAP, canonical_gate
from repro.synthesis.numerical import synthesize_gate


def test_ablation_selection_criteria(benchmark, device):
    """Average basis duration per selection strategy, including the PE+SWAP3 one.

    Backed by the pipeline's cached per-device Target snapshots.
    """

    def run():
        return {
            strategy: device.average_basis_duration(strategy)
            for strategy in ("criterion1", "criterion2", "pe_and_swap3")
        }

    durations = benchmark.pedantic(run, iterations=1, rounds=1)
    print(f"\naverage basis durations (ns): { {k: round(v, 2) for k, v in durations.items()} }")
    # Criterion 1 is the most permissive and therefore the fastest.
    assert durations["criterion1"] <= durations["criterion2"] + 1e-6
    assert durations["criterion1"] <= durations["pe_and_swap3"] + 1e-6


def test_ablation_depth_prediction_speedup(benchmark):
    """The analytic depth skip should not be slower than the incremental search."""
    basis = canonical_gate(0.24, 0.24, 0.03)

    def with_prediction():
        return synthesize_gate(SWAP, basis, predicted_layers=3, restarts=3)

    result = benchmark.pedantic(with_prediction, iterations=1, rounds=2)
    start = time.perf_counter()
    incremental = synthesize_gate(SWAP, basis, predicted_layers=None, restarts=3)
    incremental_time = time.perf_counter() - start
    print(
        f"\nincremental search: {incremental_time:.2f} s, layers={incremental.n_layers}; "
        f"predicted search reaches layers={result.n_layers} with fidelity {result.fidelity:.8f}"
    )
    assert result.n_layers == incremental.n_layers == 3
    assert result.fidelity > 1 - 1e-5


def test_ablation_single_qubit_duration(benchmark, device):
    """Sweep the 1Q layer duration: longer 1Q gates erode the nonstandard win."""
    circuit = bernstein_vazirani(9)
    layout = greedy_subgraph_layout(circuit, device)
    routed = SabreRouter(device).run(circuit, layout).circuit

    def run():
        results = {}
        for t1q in (0.0, 20.0, 40.0):
            options = TranslationOptions.for_strategy("criterion2", one_qubit_duration=t1q)
            ops = translate_circuit(routed, device, "criterion2", options)
            results[t1q] = sum(op.duration for op in ops if op.kind == "2q")
        return results

    totals = benchmark.pedantic(run, iterations=1, rounds=1)
    print(f"\ntotal 2Q-block time vs 1Q duration: { {k: round(v) for k, v in totals.items()} }")
    assert totals[0.0] < totals[20.0] < totals[40.0]


def test_ablation_cnot_synthesis_from_criterion_gates(benchmark, device):
    """CNOT decomposition fidelity from an actual per-edge Criterion-2 gate."""
    edge = device.edges()[0]
    selection = device.basis_gate(edge, "criterion2")

    def run():
        return synthesize_gate(
            CNOT, selection.unitary, predicted_layers=selection.cnot_layers, restarts=4
        )

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    print(
        f"\nedge {edge}: CNOT in {result.n_layers} layers of the Criterion-2 gate, "
        f"decomposition fidelity {result.fidelity:.8f}"
    )
    assert result.fidelity > 1 - 1e-4


def test_ablation_routing_cost(benchmark, device):
    """SWAP overhead of routing BV across the grid (why SWAP synthesis matters)."""
    circuit = bernstein_vazirani(29)

    def run():
        layout = greedy_subgraph_layout(circuit, device)
        return SabreRouter(device).run(circuit, layout)

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    ratio = result.swap_count / max(len(circuit.two_qubit_gates()), 1)
    print(f"\nbv_29: {result.swap_count} SWAPs inserted for {len(circuit.two_qubit_gates())} CNOTs "
          f"({ratio:.2f} SWAPs per original 2Q gate)")
    assert result.swap_count > 0
    assert np.isfinite(ratio)
