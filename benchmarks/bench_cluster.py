"""Cluster soak benchmark: scaling, warm-store reuse, shedding, coherence.

Exercises the sharded compilation cluster (``repro.cluster``) end to end and
emits ``BENCH_cluster.json`` with five phase groups:

* **single_warm** -- the fair baseline: one plain single-process
  :class:`~repro.service.net.ServiceServer` (no cluster front end), warm,
  over the wire.  The cluster speedup is measured against this.
* **cluster_cold / cluster_warm** -- a fresh N-shard cluster over an empty
  shared target store, then the same workload repeated hot.
* **cluster_warm_disk** -- a *brand new* cluster started over the now-warm
  store: its first pass must be served from disk (``builds == 0``), which is
  the shared-store reuse guarantee.
* **overload** -- a single-device flood past the admission bound: requests
  must shed with ``retry_after_ms`` (and eventually complete when the client
  honours it) rather than error or queue without bound.
* **coherence** -- one drift epoch applied through the calibrate fan-out
  (absolute wire payloads from :mod:`repro.drift.wire`), with load running
  *during* the update; after the ack every response fingerprint must be the
  post-drift one (``stale_served == 0``).

The committed copy at ``benchmarks/BENCH_cluster.json`` is the CI perf
baseline (``benchmarks/check_perf.py`` gates it; the >= 1.6x cluster-over-
single speedup floor applies on multi-core runners -- the document records
``cpus`` so the gate can tell).  Refresh it from the repository root::

    PYTHONPATH=src python benchmarks/bench_cluster.py \
        --output benchmarks/BENCH_cluster.json

The file is named ``bench_*`` (not ``test_*``) on purpose: pytest does not
collect it, CI runs it as a script and uploads the JSON artifact.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import tempfile
from pathlib import Path

from repro.cluster import ClusterConfig, ClusterFrontend
from repro.drift.models import parse_drift_model
from repro.drift.wire import drift_calibration_payload, shadow_device
from repro.fleet.devices import device_fingerprint, make_device
from repro.fleet.spec import TopologySpec
from repro.service.loadgen import LoadSpec, run_phase_wire
from repro.service.net import ServiceClient, ServiceServer
from repro.service.service import CompilationService, ServiceConfig

DEFAULT_CIRCUITS = ("ghz_3", "bv_3")
DEFAULT_SEEDS = (11, 12, 13, 14)
#: Device seed for the single-device overload and coherence phases.
FOCUS_SEED = 21


def cpu_count() -> int:
    """Usable CPUs (affinity-aware where the platform exposes it)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _spec(args: argparse.Namespace, **overrides) -> LoadSpec:
    fields = {
        "circuits": tuple(args.circuits),
        "topology": args.topology,
        "device_seeds": tuple(args.device_seeds),
        "strategies": tuple(args.strategies),
        "mapping": args.mapping,
        "repeats": 1,
        "concurrency": args.concurrency,
    }
    fields.update(overrides)
    return LoadSpec(**fields)


def _cluster_config(args: argparse.Namespace, store_dir: str) -> ClusterConfig:
    return ClusterConfig(
        shards=args.shards,
        store_dir=store_dir,
        batch_window_ms=args.batch_window_ms,
        max_pending_per_shard=args.max_pending_per_shard,
        connections_per_shard=args.connections_per_shard,
    )


async def bench_single(args: argparse.Namespace, store_dir: str) -> dict:
    """Warm wire throughput of one plain single-process service."""
    spec = _spec(args)
    one_pass = spec.requests()
    config = ServiceConfig(cache_dir=store_dir, batch_window_ms=args.batch_window_ms)
    server = ServiceServer(CompilationService(config), port=0)
    await server.start()
    host, port = server.address
    try:
        await run_phase_wire(host, port, one_pass, spec.concurrency, name="single-warmup")
        warm = await run_phase_wire(
            host,
            port,
            one_pass * args.warm_repeats,
            spec.concurrency,
            name="single_warm",
        )
    finally:
        await server.stop()
    return warm


async def bench_cluster_fresh(args: argparse.Namespace, store_dir: str) -> dict:
    """Cold + warm + overload + coherence against one fresh cluster."""
    spec = _spec(args)
    one_pass = spec.requests()
    frontend = ClusterFrontend(_cluster_config(args, store_dir), port=0)
    await frontend.start()
    try:
        host, port = frontend.address
        cold = await run_phase_wire(
            host, port, one_pass, spec.concurrency, name="cluster_cold",
            shed_retries=20,
        )
        warm = await run_phase_wire(
            host,
            port,
            one_pass * args.warm_repeats,
            spec.concurrency,
            name="cluster_warm",
            shed_retries=20,
        )
        overload = await bench_overload(args, host, port)
        coherence = await bench_coherence(args, host, port)
        cluster_metrics = await frontend.metrics_snapshot()
    finally:
        await frontend.stop()
    return {
        "cold": cold,
        "warm": warm,
        "overload": overload,
        "coherence": coherence,
        "cluster_metrics": cluster_metrics,
    }


async def bench_overload(args: argparse.Namespace, host: str, port: int) -> dict:
    """Flood one device far past the admission bound.

    Every request targets the same device, so the whole flood lands on one
    shard's bounded queue: the front end *must* shed (the queue bound is
    well below the flood's concurrency), and a client that honours
    ``retry_after_ms`` must still land every request eventually -- sheds
    with zero errors is the acceptance shape.
    """
    spec = _spec(
        args,
        circuits=(args.circuits[0],),
        device_seeds=(FOCUS_SEED,),
        repeats=args.overload_requests,
        concurrency=args.overload_concurrency,
    )
    return await run_phase_wire(
        host,
        port,
        spec.requests(),
        spec.concurrency,
        name="overload",
        shed_retries=100,
    )


async def bench_coherence(args: argparse.Namespace, host: str, port: int) -> dict:
    """One drift epoch through the calibrate fan-out, under load.

    Uses :func:`~repro.drift.wire.drift_calibration_payload` so the device
    state every shard lands on is byte-identical to an in-place drift of the
    same spec -- the expected post-drift fingerprint is computed client-side
    from the shadow device, then every post-ack response is checked against
    it.  A load phase runs concurrently with the calibrate to exercise the
    quiesce gate (its responses are allowed either fingerprint; only
    post-ack responses are gated).
    """
    topology = TopologySpec.parse(args.topology)
    shadow = shadow_device(make_device(topology, seed=FOCUS_SEED))
    pre_fingerprint = device_fingerprint(shadow)
    models = [parse_drift_model(text) for text in args.drift_models]
    payload, _events = drift_calibration_payload(
        shadow, models, epoch=0, drift_seed=args.drift_seed
    )
    post_fingerprint = device_fingerprint(shadow)

    spec = _spec(
        args,
        circuits=(args.circuits[0],),
        device_seeds=(FOCUS_SEED,),
        repeats=6,
        concurrency=4,
    )
    requests = spec.requests()

    during_task = asyncio.create_task(
        run_phase_wire(
            host, port, requests, spec.concurrency, name="during-calibrate",
            shed_retries=20, collect_responses=True,
        )
    )
    await asyncio.sleep(0.01)  # let the load start before the update lands
    async with ServiceClient(host, port) as client:
        report = await client.calibrate(
            topology=args.topology, device_seed=FOCUS_SEED, **payload
        )
    during = await during_task

    after = await run_phase_wire(
        host, port, requests, spec.concurrency, name="after-calibrate",
        shed_retries=20, collect_responses=True,
    )
    stale_served = sum(
        1
        for response in after["responses"]
        if response.get("fingerprint") != post_fingerprint
    )
    during_stale = sum(
        1
        for response in during["responses"]
        if response.get("fingerprint")
        not in (pre_fingerprint, post_fingerprint)
    )
    during.pop("responses", None)
    after.pop("responses", None)
    return {
        "pre_fingerprint": pre_fingerprint,
        "post_fingerprint": post_fingerprint,
        "fingerprint_changed": post_fingerprint != pre_fingerprint,
        "coherent_ack": bool(report.get("coherent")),
        "shards_acked": sorted(report.get("shards", {})),
        "during": during,
        "after": after,
        "responses_checked": after["requests"],
        "stale_served": stale_served,
        "during_unknown_fingerprints": during_stale,
    }


async def bench_cluster_restart(args: argparse.Namespace, store_dir: str) -> dict:
    """First pass of a brand-new cluster over the already-warm store."""
    spec = _spec(args)
    frontend = ClusterFrontend(_cluster_config(args, store_dir), port=0)
    await frontend.start()
    try:
        host, port = frontend.address
        phase = await run_phase_wire(
            host,
            port,
            spec.requests(),
            spec.concurrency,
            name="cluster_warm_disk",
            shed_retries=20,
        )
        snapshot = await frontend.metrics_snapshot()
    finally:
        await frontend.stop()
    cache = snapshot["aggregate"]["cache"]
    return {
        **phase,
        "cache": cache,
        "builds_after_restart": cache["builds"],
        "disk_hits_after_restart": cache["disk_hits"],
    }


async def run_bench(args: argparse.Namespace, store_root: str) -> dict:
    single_store = str(Path(store_root) / "single")
    cluster_store = str(Path(store_root) / "cluster")
    single_warm = await bench_single(args, single_store)
    fresh = await bench_cluster_fresh(args, cluster_store)
    warm_disk = await bench_cluster_restart(args, cluster_store)
    single_rps = single_warm["throughput_rps"]
    cluster_rps = fresh["warm"]["throughput_rps"]
    return {
        "benchmark": "cluster",
        "python": platform.python_version(),
        "cpus": cpu_count(),
        "workload": {
            "circuits": list(args.circuits),
            "topology": args.topology,
            "device_seeds": list(args.device_seeds),
            "strategies": list(args.strategies),
            "mapping": args.mapping,
            "concurrency": args.concurrency,
            "warm_repeats": args.warm_repeats,
            "shards": args.shards,
            "batch_window_ms": args.batch_window_ms,
            "max_pending_per_shard": args.max_pending_per_shard,
            "connections_per_shard": args.connections_per_shard,
            "overload_requests": args.overload_requests,
            "overload_concurrency": args.overload_concurrency,
            "drift_models": list(args.drift_models),
            "drift_seed": args.drift_seed,
        },
        "single_warm": single_warm,
        "cluster_cold": fresh["cold"],
        "cluster_warm": fresh["warm"],
        "cluster_warm_disk": warm_disk,
        "overload": fresh["overload"],
        "coherence": fresh["coherence"],
        "speedup_cluster_over_single": (
            cluster_rps / single_rps if single_rps > 0 else 0.0
        ),
        "cluster_metrics": fresh["cluster_metrics"],
    }


def main(argv: list[str] | None = None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--circuits", nargs="+", default=list(DEFAULT_CIRCUITS),
        help="fleet circuit names",
    )
    parser.add_argument("--topology", default="linear:4", help="device topology label")
    parser.add_argument(
        "--device-seeds", nargs="+", type=int, default=list(DEFAULT_SEEDS),
        help="device frequency seeds (one simulated device each)",
    )
    parser.add_argument(
        "--strategies", nargs="+", default=["baseline", "criterion2"],
        help="strategies each request compiles under",
    )
    parser.add_argument("--mapping", default="hop_count", help="mapping metric")
    parser.add_argument("--shards", type=int, default=2, help="shard process count")
    parser.add_argument(
        "--concurrency", type=int, default=12, help="client connection count"
    )
    parser.add_argument(
        "--warm-repeats", type=int, default=12,
        help="how many passes over the workload the warm phases make",
    )
    parser.add_argument(
        "--batch-window-ms", type=float, default=1.0, help="coalescing window"
    )
    parser.add_argument(
        "--max-pending-per-shard", type=int, default=16,
        help="admission bound (below the overload phase's concurrency on "
        "purpose, so that phase must shed)",
    )
    parser.add_argument(
        "--connections-per-shard", type=int, default=4,
        help="front-end wire connections per shard",
    )
    parser.add_argument(
        "--overload-requests", type=int, default=48,
        help="single-device requests fired by the overload phase",
    )
    parser.add_argument(
        "--overload-concurrency", type=int, default=32,
        help="overload client connections (far past the admission bound)",
    )
    parser.add_argument(
        "--drift-models", nargs="+",
        default=["ou:sigma_ghz=0.05", "tls:rate=0.5"],
        help="drift model specs the coherence phase applies",
    )
    parser.add_argument("--drift-seed", type=int, default=7, help="drift RNG seed")
    parser.add_argument(
        "--store-dir", default=None,
        help="root for the shared target stores (default: a throwaway temp dir)",
    )
    parser.add_argument(
        "--output", default="benchmarks/BENCH_cluster.json",
        help="where to write the JSON results",
    )
    args = parser.parse_args(argv)

    if args.store_dir is not None:
        results = asyncio.run(run_bench(args, args.store_dir))
    else:
        with tempfile.TemporaryDirectory(prefix="bench-cluster-") as tmp:
            results = asyncio.run(run_bench(args, tmp))

    path = Path(args.output)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(results, indent=2))

    for key in ("single_warm", "cluster_cold", "cluster_warm", "cluster_warm_disk", "overload"):
        phase = results[key]
        latency = phase["latency_ms"]
        print(
            f"{phase['phase']:<17} {phase['requests']:>5d} requests "
            f"{phase['throughput_rps']:>8.1f} req/s "
            f"p50 {latency['p50']:>7.1f}ms p95 {latency['p95']:>7.1f}ms "
            f"({phase['errors']} errors, {phase['sheds']} sheds)"
        )
    coherence = results["coherence"]
    print(
        f"speedup (cluster/single, {results['cpus']} cpu(s)): "
        f"{results['speedup_cluster_over_single']:.2f}x; "
        f"warm-store builds after restart: "
        f"{results['cluster_warm_disk']['builds_after_restart']}; "
        f"stale served after calibrate: {coherence['stale_served']}/"
        f"{coherence['responses_checked']}"
    )
    print(f"\nWrote {path}")
    return results


if __name__ == "__main__":
    main()
