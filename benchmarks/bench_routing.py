"""Routing benchmark: hop-count vs basis-aware mapping, per circuit.

Compiles a suite of benchmark circuits onto a seeded device under both
mapping metrics and emits ``BENCH_routing.json``: per (circuit, mapping)
swap count, SWAP-synthesis duration, makespan, fidelity and wall-time, plus
per-circuit deltas.  Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_routing.py
    PYTHONPATH=src python benchmarks/bench_routing.py \
        --topology heavy_hex:2 --seed 11 --strategy criterion2 \
        --circuits qft_6 cuccaro_8 --output benchmarks/BENCH_routing.json

The file is named ``bench_*`` (not ``test_*``) on purpose: pytest does not
collect it, CI runs it as a script and uploads the JSON artifact.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.compiler import available_mapping_names, transpile
from repro.device import Device, DeviceParameters
from repro.fleet import TopologySpec, build_circuit

DEFAULT_CIRCUITS = ("qft_6", "cuccaro_8", "bv_9", "qaoa_0.33_8")
DEFAULT_MAPPINGS = ("hop_count", "basis_aware")


def bench(args: argparse.Namespace) -> dict:
    """Compile every (circuit, mapping) cell and collect the numbers."""
    topology = TopologySpec.parse(args.topology)
    device = Device(graph=topology.graph(), params=DeviceParameters(seed=args.seed))
    # Warm the per-edge calibrations and the cost model once so wall-times
    # measure mapping + translation, not trajectory simulation.
    from repro.compiler import build_target

    build_target(device, args.strategy).cost_model()

    rows = []
    for name in args.circuits:
        circuit = build_circuit(name)
        per_mapping: dict[str, dict] = {}
        for mapping in args.mappings:
            start = time.perf_counter()
            compiled = transpile(
                circuit, device, strategy=args.strategy, mapping=mapping, seed=17
            )
            elapsed = time.perf_counter() - start
            per_mapping[mapping] = {
                "swap_count": int(compiled.swap_count),
                "swap_duration_ns": float(compiled.swap_duration_ns),
                "duration_ns": float(compiled.total_duration),
                "fidelity": float(compiled.fidelity),
                "wall_time_s": elapsed,
            }
        row = {"circuit": name, "mappings": per_mapping}
        reference = per_mapping.get(args.mappings[0])
        if reference is not None and len(args.mappings) > 1:
            other = per_mapping[args.mappings[1]]
            row["delta"] = {
                "swap_count": other["swap_count"] - reference["swap_count"],
                "swap_duration_ns": other["swap_duration_ns"]
                - reference["swap_duration_ns"],
                "fidelity": other["fidelity"] - reference["fidelity"],
            }
        rows.append(row)
    return {
        "benchmark": "routing",
        "topology": topology.label,
        "device_seed": args.seed,
        "strategy": args.strategy,
        "mappings": list(args.mappings),
        "python": platform.python_version(),
        "rows": rows,
    }


def main(argv: list[str] | None = None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--topology", default="heavy_hex:2", help="TopologySpec label")
    parser.add_argument("--seed", type=int, default=11, help="device frequency seed")
    parser.add_argument("--strategy", default="criterion2", help="basis-gate strategy")
    parser.add_argument(
        "--circuits", nargs="+", default=list(DEFAULT_CIRCUITS), help="fleet circuit names"
    )
    parser.add_argument(
        "--mappings",
        nargs="+",
        default=list(DEFAULT_MAPPINGS),
        help=f"mappings to compare (registered: {list(available_mapping_names())})",
    )
    parser.add_argument(
        "--output",
        default="benchmarks/BENCH_routing.json",
        help="where to write the JSON results",
    )
    args = parser.parse_args(argv)

    results = bench(args)
    path = Path(args.output)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(results, indent=2))

    header = f"{'circuit':<14} {'mapping':<14} {'swaps':>6} {'swap dur':>10} {'fidelity':>9} {'wall':>8}"
    print(f"Routing benchmark on {results['topology']} (strategy {args.strategy})")
    print(header)
    print("-" * len(header))
    for row in results["rows"]:
        for mapping, cell in row["mappings"].items():
            print(
                f"{row['circuit']:<14} {mapping:<14} {cell['swap_count']:>6d} "
                f"{cell['swap_duration_ns']:>8.1f}ns {cell['fidelity']:>9.4f} "
                f"{cell['wall_time_s'] * 1000:>6.1f}ms"
            )
    print(f"\nWrote {path}")
    return results


if __name__ == "__main__":
    main()
