"""Routing benchmark: hop-count vs basis-aware mapping, per circuit.

Compiles a suite of benchmark circuits onto a seeded device under both
mapping metrics and emits ``BENCH_routing.json``: per (circuit, mapping)
swap count, SWAP-synthesis duration, makespan, fidelity and wall-time, plus
per-circuit deltas.  Each cell also times the *routing pass alone* under
both router engines -- the scalar reference (``vectorized=False``) and the
default array-state engine -- best-of-:data:`ROUTING_REPS` with a fresh
router per repetition, and the document carries a suite-total ``routing``
block whose ``speedup`` (sum of reference times over sum of vectorized
times) is gated by ``check_perf.py``.  Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_routing.py
    PYTHONPATH=src python benchmarks/bench_routing.py \
        --topology heavy_hex:2 --seed 11 --strategy criterion2 \
        --circuits qft_6 cuccaro_8 --output benchmarks/BENCH_routing.json

``--profile PATH`` additionally reruns the vectorized routing pass under
``cProfile`` and writes the hottest functions (by total time) as a JSON
artifact -- CI uploads it so hot-path regressions are diagnosable from the
run page without reproducing locally.

Each cell is also compiled with ``optimize=True`` (the 2Q-block
consolidation pass) and the document carries an ``optimizer`` block: mean
2Q-depth and duration reductions plus ``depth_vs_lower_bound`` percentiles,
gated by ``check_perf.py``.  Every optimized compile is proven against its
unoptimized routing by :func:`repro.compiler.verify_consolidation` (the
block-local equivalence check, valid at any width); on devices of at most
10 qubits the dense unitary harness in ``tests/equivalence.py`` runs too.

The file is named ``bench_*`` (not ``test_*``) on purpose: pytest does not
collect it, CI runs it as a script and uploads the JSON artifact.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.compiler import (
    SabreRouter,
    available_mapping_names,
    build_metric,
    sabre_layout,
    transpile,
    verify_consolidation,
)
from repro.device import Device, DeviceParameters
from repro.fleet import TopologySpec, build_circuit

DEFAULT_CIRCUITS = ("qft_6", "cuccaro_8", "bv_9", "qaoa_0.33_8", "qft_12", "cuccaro_16")
DEFAULT_MAPPINGS = ("hop_count", "basis_aware")

#: Dense unitary-equivalence checks contract 2^n x 2^n matrices; wider
#: devices rely on the block-local ``verify_consolidation`` proof alone.
DENSE_CHECK_MAX_QUBITS = 10


def _percentile(values: list[float], q: float) -> float:
    """Linear-interpolation percentile of ``values`` (q in [0, 100])."""
    ordered = sorted(values)
    if not ordered:
        return float("nan")
    rank = (len(ordered) - 1) * q / 100.0
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    return ordered[low] + (ordered[high] - ordered[low]) * (rank - low)


def _dense_harness():
    """The dense equivalence harness, imported from ``tests/equivalence.py``.

    The benchmark runs as a script (``python benchmarks/bench_routing.py``),
    so the repository root is not on ``sys.path``; add it before importing.
    """
    import sys

    root = str(Path(__file__).resolve().parents[1])
    if root not in sys.path:
        sys.path.insert(0, root)
    from tests.equivalence import assert_compiled_equivalent

    return assert_compiled_equivalent

#: Repetitions per routing-only measurement; the best (minimum) wall time is
#: recorded -- routing is deterministic, so the minimum is the least-noisy
#: estimate of the true cost.
ROUTING_REPS = 5


def _routing_only(circuit, device, metric) -> tuple[float, float, dict[int, int]]:
    """Best-of-reps wall time of the routing pass alone, both engines.

    The layout is computed once and shared; each repetition routes with a
    *fresh* router (routers are cheap, and reuse would let warm decay arrays
    flatter the later reps).  Returns ``(reference_s, vectorized_s, layout)``.
    """
    layout = sabre_layout(
        circuit, device, router=SabreRouter(device, seed=17, metric=metric), seed=17
    )
    times = {}
    for vectorized in (False, True):
        best = float("inf")
        for _ in range(ROUTING_REPS):
            router = SabreRouter(device, seed=17, metric=metric, vectorized=vectorized)
            start = time.perf_counter()
            router.run(circuit, layout)
            best = min(best, time.perf_counter() - start)
        times[vectorized] = best
    return times[False], times[True], layout


def profile_routing(cells, device, top: int = 25) -> dict:
    """Profile the vectorized routing pass over every benchmark cell.

    ``cells`` is a list of ``(circuit, metric, layout)`` tuples; the return
    value is a JSON-ready document of the ``top`` hottest functions by total
    (self) time.
    """
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    for circuit, metric, layout in cells:
        SabreRouter(device, seed=17, metric=metric).run(circuit, layout)
    profiler.disable()

    stats = pstats.Stats(profiler)
    functions = []
    for (filename, lineno, name), (_cc, ncalls, tottime, cumtime, _callers) in (
        stats.stats.items()  # type: ignore[attr-defined]
    ):
        functions.append(
            {
                "function": f"{Path(filename).name}:{lineno}({name})",
                "calls": int(ncalls),
                "tottime_ms": tottime * 1000.0,
                "cumtime_ms": cumtime * 1000.0,
            }
        )
    functions.sort(key=lambda entry: entry["tottime_ms"], reverse=True)
    return {
        "benchmark": "routing_profile",
        "total_time_ms": stats.total_tt * 1000.0,  # type: ignore[attr-defined]
        "functions": functions[:top],
    }


def bench(args: argparse.Namespace) -> dict:
    """Compile every (circuit, mapping) cell and collect the numbers."""
    topology = TopologySpec.parse(args.topology)
    device = Device(graph=topology.graph(), params=DeviceParameters(seed=args.seed))
    # Warm the per-edge calibrations and the cost model once so wall-times
    # measure mapping + translation, not trajectory simulation.
    from repro.compiler import build_target

    cost_model = build_target(device, args.strategy).cost_model()
    metrics = {
        mapping: build_metric(mapping, device, cost_model=cost_model)
        for mapping in args.mappings
    }

    rows = []
    profile_cells: list[tuple] = []
    routing_reference_s = 0.0
    routing_vectorized_s = 0.0
    depth_reductions: list[float] = []
    duration_reductions: list[float] = []
    depth_ratios: list[float] = []
    dense_checked = 0
    for name in args.circuits:
        circuit = build_circuit(name)
        per_mapping: dict[str, dict] = {}
        for mapping in args.mappings:
            start = time.perf_counter()
            compiled = transpile(
                circuit, device, strategy=args.strategy, mapping=mapping, seed=17
            )
            elapsed = time.perf_counter() - start
            reference_s, vectorized_s, layout = _routing_only(
                circuit, device, metrics[mapping]
            )
            routing_reference_s += reference_s
            routing_vectorized_s += vectorized_s
            profile_cells.append((circuit, metrics[mapping], layout))
            optimized = transpile(
                circuit,
                device,
                strategy=args.strategy,
                mapping=mapping,
                seed=17,
                optimize=True,
            )
            verify_consolidation(optimized.optimization)
            dense = optimized.routing.circuit.n_qubits <= DENSE_CHECK_MAX_QUBITS
            if dense:
                _dense_harness()(circuit, optimized)
                dense_checked += 1
            base_layers = int(compiled.two_qubit_layer_count)
            opt_layers = int(optimized.two_qubit_layer_count)
            depth_reduction = (
                1.0 - opt_layers / base_layers if base_layers else 0.0
            )
            duration_reduction = (
                1.0 - float(optimized.total_duration) / float(compiled.total_duration)
                if compiled.total_duration
                else 0.0
            )
            ratio = float(optimized.depth_vs_lower_bound)
            depth_reductions.append(depth_reduction)
            duration_reductions.append(duration_reduction)
            depth_ratios.append(ratio)
            per_mapping[mapping] = {
                "swap_count": int(compiled.swap_count),
                "swap_duration_ns": float(compiled.swap_duration_ns),
                "duration_ns": float(compiled.total_duration),
                "fidelity": float(compiled.fidelity),
                "wall_time_s": elapsed,
                "routing_s": {
                    "reference": reference_s,
                    "vectorized": vectorized_s,
                    "speedup": reference_s / vectorized_s
                    if vectorized_s
                    else float("inf"),
                },
                "optimizer": {
                    "two_qubit_layers": opt_layers,
                    "two_qubit_layers_base": base_layers,
                    "depth_reduction": depth_reduction,
                    "duration_ns": float(optimized.total_duration),
                    "duration_reduction": duration_reduction,
                    "fidelity": float(optimized.fidelity),
                    "depth_lower_bound": int(optimized.depth_lower_bound),
                    "depth_vs_lower_bound": ratio,
                    "blocks_consolidated": optimized.optimization.blocks_consolidated,
                    "blocks_dropped": optimized.optimization.blocks_dropped,
                    "verified": "dense+blocks" if dense else "blocks",
                },
            }
        row = {"circuit": name, "mappings": per_mapping}
        reference = per_mapping.get(args.mappings[0])
        if reference is not None and len(args.mappings) > 1:
            other = per_mapping[args.mappings[1]]
            row["delta"] = {
                "swap_count": other["swap_count"] - reference["swap_count"],
                "swap_duration_ns": other["swap_duration_ns"]
                - reference["swap_duration_ns"],
                "fidelity": other["fidelity"] - reference["fidelity"],
            }
        rows.append(row)
    document = {
        "benchmark": "routing",
        "topology": topology.label,
        "device_seed": args.seed,
        "strategy": args.strategy,
        "mappings": list(args.mappings),
        "python": platform.python_version(),
        "routing": {
            "reps": ROUTING_REPS,
            "reference_s": routing_reference_s,
            "vectorized_s": routing_vectorized_s,
            "speedup": routing_reference_s / routing_vectorized_s
            if routing_vectorized_s
            else float("inf"),
        },
        "optimizer": {
            "cells": len(depth_reductions),
            "mean_depth_reduction": sum(depth_reductions) / len(depth_reductions)
            if depth_reductions
            else 0.0,
            "mean_duration_reduction": sum(duration_reductions)
            / len(duration_reductions)
            if duration_reductions
            else 0.0,
            "depth_vs_lower_bound": {
                "p50": _percentile(depth_ratios, 50.0),
                "p90": _percentile(depth_ratios, 90.0),
                "max": max(depth_ratios) if depth_ratios else float("nan"),
            },
            "dense_checked": dense_checked,
            "all_verified": True,
        },
        "rows": rows,
    }
    if getattr(args, "profile", None):
        profile_path = Path(args.profile)
        profile_path.parent.mkdir(parents=True, exist_ok=True)
        profile = profile_routing(profile_cells, device)
        profile_path.write_text(json.dumps(profile, indent=2))
        print(f"Wrote routing profile to {profile_path}")
    return document


def main(argv: list[str] | None = None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--topology", default="heavy_hex:2", help="TopologySpec label")
    parser.add_argument("--seed", type=int, default=11, help="device frequency seed")
    parser.add_argument("--strategy", default="criterion2", help="basis-gate strategy")
    parser.add_argument(
        "--circuits", nargs="+", default=list(DEFAULT_CIRCUITS), help="fleet circuit names"
    )
    parser.add_argument(
        "--mappings",
        nargs="+",
        default=list(DEFAULT_MAPPINGS),
        help=f"mappings to compare (registered: {list(available_mapping_names())})",
    )
    parser.add_argument(
        "--output",
        default="benchmarks/BENCH_routing.json",
        help="where to write the JSON results",
    )
    parser.add_argument(
        "--profile",
        default=None,
        metavar="PATH",
        help="also cProfile the vectorized routing pass and write the "
        "hottest functions to this JSON path",
    )
    args = parser.parse_args(argv)

    results = bench(args)
    path = Path(args.output)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(results, indent=2))

    header = (
        f"{'circuit':<14} {'mapping':<14} {'swaps':>6} {'swap dur':>10} "
        f"{'fidelity':>9} {'wall':>8} {'route ref':>10} {'route vec':>10} {'x':>6}"
    )
    print(f"Routing benchmark on {results['topology']} (strategy {args.strategy})")
    print(header)
    print("-" * len(header))
    for row in results["rows"]:
        for mapping, cell in row["mappings"].items():
            routing = cell["routing_s"]
            print(
                f"{row['circuit']:<14} {mapping:<14} {cell['swap_count']:>6d} "
                f"{cell['swap_duration_ns']:>8.1f}ns {cell['fidelity']:>9.4f} "
                f"{cell['wall_time_s'] * 1000:>6.1f}ms "
                f"{routing['reference'] * 1000:>8.2f}ms "
                f"{routing['vectorized'] * 1000:>8.2f}ms {routing['speedup']:>5.1f}x"
            )
    routing = results["routing"]
    print(
        f"\nRouting-only suite total: reference {routing['reference_s'] * 1000:.1f}ms, "
        f"vectorized {routing['vectorized_s'] * 1000:.1f}ms "
        f"-> {routing['speedup']:.2f}x (best of {routing['reps']})"
    )
    optimizer = results["optimizer"]
    ratios = optimizer["depth_vs_lower_bound"]
    print(
        f"Optimizer over {optimizer['cells']} cells: "
        f"2Q depth -{optimizer['mean_depth_reduction'] * 100:.1f}%, "
        f"duration -{optimizer['mean_duration_reduction'] * 100:.1f}%, "
        f"depth/lower-bound p50 {ratios['p50']:.3f} p90 {ratios['p90']:.3f} "
        f"max {ratios['max']:.3f} "
        f"(all verified, {optimizer['dense_checked']} dense-checked)"
    )
    print(f"Wrote {path}")
    return results


if __name__ == "__main__":
    main()
