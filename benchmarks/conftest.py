"""Shared fixtures for the benchmark harness.

Every table and figure of the paper has one benchmark module that regenerates
it; `pytest benchmarks/ --benchmark-only` runs them all and prints the rows /
series being reproduced.  Set ``REPRO_FAST=1`` to run reduced problem sizes.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import CaseStudyConfig, case_study_device


def fast_mode() -> bool:
    """Reduced sizes when REPRO_FAST is set (useful on slow machines)."""
    return os.environ.get("REPRO_FAST", "") not in ("", "0", "false", "False")


@pytest.fixture(scope="session")
def device():
    """The case-study device shared by all benchmarks (built once)."""
    config = CaseStudyConfig(rows=6, cols=6) if fast_mode() else CaseStudyConfig()
    return case_study_device(config)


@pytest.fixture(scope="session")
def config():
    return CaseStudyConfig(rows=6, cols=6) if fast_mode() else CaseStudyConfig()
