"""Benchmark: Fig. 6 -- the transmon-coupler unit cell (zero-ZZ bias search)."""

from repro.experiments.figures import figure6_unitcell


def test_fig6_unitcell(benchmark):
    data = benchmark.pedantic(figure6_unitcell, iterations=1, rounds=1)
    print(
        f"\nqubit detuning {data['detuning_ghz']:.2f} GHz; static ZZ at default bias "
        f"{data['static_zz_at_default_bias_mhz']:.3f} MHz -> at zero-ZZ bias "
        f"{data['static_zz_at_zero_bias_mhz']:.4f} MHz"
    )
    assert abs(data["static_zz_at_zero_bias_mhz"]) <= abs(data["static_zz_at_default_bias_mhz"]) + 1e-9
