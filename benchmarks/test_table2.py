"""Benchmark: regenerate Table II (benchmark-circuit fidelities).

The full table (20 circuits x 3 basis-gate sets on the 10x10 device) takes a
few minutes; by default this module benchmarks a representative subset per
benchmark family and runs the remaining rows once (not timed).  Set
``REPRO_TABLE2_FULL=1`` to time the full table, or ``REPRO_FAST=1`` to shrink
everything.
"""

import os

import pytest

from repro.experiments.table2 import (
    FAST_SUBSET,
    TABLE2_BENCHMARKS,
    format_table2,
    ordering_violations,
    table2_rows,
)

REPRESENTATIVE = ("bv_9", "bv_29", "qft_10", "cuccaro_10", "qaoa_0.1_20", "qaoa_0.33_10")


def _selected_benchmarks() -> list[str]:
    if os.environ.get("REPRO_TABLE2_FULL", ""):
        return list(TABLE2_BENCHMARKS)
    if os.environ.get("REPRO_FAST", ""):
        return list(FAST_SUBSET)
    return list(REPRESENTATIVE)


def _workers() -> int | None:
    """Thread-pool size for the batch pipeline (REPRO_TABLE2_WORKERS).

    Unset/empty means "let the executor decide"; 0 or negative means serial.
    """
    value = os.environ.get("REPRO_TABLE2_WORKERS", "").strip()
    if not value:
        return None
    try:
        return int(value)  # transpile_batch treats <= 1 as serial
    except ValueError as exc:
        raise ValueError(f"REPRO_TABLE2_WORKERS must be an integer, got {value!r}") from exc


def test_table2(benchmark, device, config):
    names = _selected_benchmarks()
    rows = benchmark.pedantic(
        lambda: table2_rows(
            benchmarks=names, device=device, config=config, max_workers=_workers()
        ),
        iterations=1,
        rounds=1,
    )
    print("\n" + format_table2(rows))
    assert ordering_violations(rows) == []
    # The fidelity gap must widen with benchmark size within each family
    # (the paper's "improvements scale exponentially in benchmark size").
    by_name = {row.benchmark: row for row in rows}
    if "bv_9" in by_name and "bv_29" in by_name:
        gain_small = by_name["bv_9"].criterion2 / max(by_name["bv_9"].baseline, 1e-12)
        gain_large = by_name["bv_29"].criterion2 / max(by_name["bv_29"].baseline, 1e-12)
        assert gain_large > gain_small


@pytest.mark.parametrize("name", ["bv_19", "qaoa_0.33_20"])
def test_table2_individual_rows(benchmark, device, config, name):
    """Time individual representative rows (one compile across 3 strategies)."""
    rows = benchmark.pedantic(
        lambda: table2_rows(benchmarks=[name], device=device, config=config),
        iterations=1,
        rounds=1,
    )
    row = rows[0]
    print(f"\n{name}: baseline={row.baseline:.3f} c1={row.criterion1:.3f} c2={row.criterion2:.3f}")
    assert row.criterion2 >= row.baseline
