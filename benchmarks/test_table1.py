"""Benchmark: regenerate Table I (basis gate / SWAP / CNOT durations & fidelities)."""

from repro.experiments.table1 import format_table1, speedup_over_baseline, table1_rows


def test_table1(benchmark, device, config):
    rows = benchmark(lambda: table1_rows(device=device, config=config))
    print("\n" + format_table1(rows))
    speedups = speedup_over_baseline(rows)
    print(f"basis-gate speedup over baseline: {speedups}")
    # Headline claim of the paper: ~8x faster nonstandard basis gates.
    assert 6.5 < speedups["criterion1"] < 9.5
    assert rows[0].swap_duration > rows[2].swap_duration
