"""Benchmark: Fig. 2 -- nonstandard measured-style trajectory with a 13 ns PE."""

from repro.experiments.figures import figure2_trajectory


def test_fig2_trajectory(benchmark):
    data = benchmark(figure2_trajectory)
    print(
        f"\nfirst perfect entangler: {data['first_perfect_entangler_ns']:.1f} ns "
        f"(paper: 13 ns); RMS deviation from the XY line: {data['deviation_from_xy']:.3f}"
    )
    assert 10.0 < data["first_perfect_entangler_ns"] < 16.0
    assert data["deviation_from_xy"] > 0.02
