"""CI perf gate: compare a fresh benchmark run against a committed baseline.

Given a baseline JSON (committed under ``benchmarks/BENCH_*.json``) and a
freshly produced run of the same benchmark, this script checks a fixed set
of metrics and **fails (exit 1) on any regression beyond tolerance** --
by default 15% (``--tolerance`` / ``PERF_GATE_TOLERANCE`` override it, e.g.
on noisy shared runners).

Two benchmark kinds are understood, keyed by the files' ``benchmark`` field:

* ``service`` (``bench_service.py``) -- cold/warm throughput, latency
  percentiles and the warm-over-cold speedup (which must also clear the
  :data:`SPEEDUP_FLOOR` of 5x regardless of the baseline).  Tail latency
  (p95) gets a wider default tolerance than the medians because it is the
  noisiest statistic of a short run.  Two same-machine ratio gates ride
  along: the **program cache** must beat the no-cache control by
  :data:`PROGRAM_SPEEDUP_FLOOR` (``REPRO_PROGRAM_SPEEDUP_FLOOR``
  overrides) with a >= 0.9 hit rate on the repeat-traffic phase and
  byte-identical results cache-on vs cache-off; and the **cold build**
  (batched edge scan + concurrent fan-out vs the scalar reference) must
  clear the CPU-count-aware :data:`BUILD_SPEEDUP_FLOOR`
  (``REPRO_BUILD_SPEEDUP_FLOOR`` overrides) while producing an identical
  target.
* ``routing`` (``bench_routing.py``) -- per-(circuit, mapping) swap count,
  SWAP-synthesis duration and fidelity.  These are *deterministic* given
  the seeds, so any drift beyond tolerance is a real behaviour change, not
  noise; wall-times are reported but never gated (they measure the runner,
  not the compiler).  The one wall-clock exception is the suite-total
  routing-only speedup (vectorized engine over the scalar reference): both
  engines run on the *same* machine in the *same* process, so the ratio is
  machine-independent and must clear :data:`ROUTING_SPEEDUP_FLOOR`
  (``REPRO_ROUTING_SPEEDUP_FLOOR`` overrides it).  The 2Q-block
  consolidation optimizer rides on the same document: its suite-mean 2Q
  depth reduction must clear :data:`OPTIMIZER_DEPTH_FLOOR`
  (``REPRO_OPTIMIZER_DEPTH_FLOOR`` overrides), every optimized cell must
  have passed the equivalence harness during the bench run, and no cell may
  lose depth or fidelity to the optimizer -- all read from the current run
  alone, since optimized and unoptimized compiles share one process.
* ``cluster`` (``bench_cluster.py``) -- warm cluster vs single-process
  throughput plus the cluster's *functional* invariants: the overload phase
  must shed (with zero errors), the warm-store restart must serve from disk
  without rebuilding, and no post-calibrate response may carry a stale
  fingerprint.  The >= :data:`CLUSTER_SPEEDUP_FLOOR` cluster-over-single
  speedup applies only when the current run had at least 2 CPUs (the
  document records ``cpus``); on a single core the shards time-slice one
  core and only a :data:`CLUSTER_SINGLE_CPU_FLOOR` sanity floor applies.
  ``REPRO_CLUSTER_SPEEDUP_FLOOR`` overrides the active floor either way.

Refreshing baselines (after an intentional perf or behaviour change)::

    PYTHONPATH=src python benchmarks/bench_routing.py \
        --output benchmarks/BENCH_routing.json
    PYTHONPATH=src python benchmarks/bench_service.py \
        --output benchmarks/BENCH_service.json

then commit the updated ``BENCH_*.json`` files with a note on why the
numbers moved.  See docs/service.md ("Performance baselines").
"""

from __future__ import annotations

import argparse
import json
import os

from dataclasses import dataclass
from pathlib import Path

#: The service acceptance criterion: warm traffic must be at least this many
#: times faster than cold traffic, whatever the baseline file says.
SPEEDUP_FLOOR = 5.0

#: The program-cache criterion: warm repeat traffic with the cache on must
#: beat the identical workload with the cache off by this factor.  Both
#: phases run in the same process on the same machine, so the ratio is
#: machine-independent.
PROGRAM_SPEEDUP_FLOOR = 2.0

#: Floor on the warm-phase program-cache hit rate: repeat traffic re-requests
#: identical programs, so anything below this means keys are unstable or the
#: LRU is thrashing.
PROGRAM_HIT_RATE_FLOOR = 0.9

#: The committed warm throughput (req/s) of the last pre-program-cache
#: baseline.  The tentpole acceptance criterion -- warm repeat traffic must
#: at least double it -- stays a standing gate against this constant, since
#: the committed baseline file now records the (much higher) cached number
#: and comparing against *that* would demand a doubling on every refresh.
PRE_CACHE_WARM_RPS = 374.89

#: The cold-build criterion: the batched multi-edge resolve (vectorized
#: chamber scan + lockstep bisection + concurrent edge fan-out) vs the
#: scalar one-edge-at-a-time reference, same machine, same process.  The
#: vectorized scan alone clears 2x on one core; real cores add thread
#: fan-out on top, so multi-core runners owe more.
BUILD_SPEEDUP_FLOOR = 2.0
BUILD_SPEEDUP_FLOOR_MULTICORE = 3.0

#: The cluster acceptance criterion on real multi-core hardware: a warm
#: 2-shard cluster must beat the single-process warm wire throughput by this
#: factor.  Only meaningful with >= 2 CPUs -- shard processes are the
#: parallelism -- so the gate checks the run's recorded ``cpus`` first.
CLUSTER_SPEEDUP_FLOOR = 1.6

#: Sanity floor on single-CPU runners: the front-end hop and process
#: time-slicing cost something, but a warm cluster collapsing below a third
#: of single-process throughput means routing or queueing is broken, not
#: that the machine is small.
CLUSTER_SINGLE_CPU_FLOOR = 0.3

#: The routing acceptance criterion: the vectorized router must beat the
#: scalar reference engine by this factor over the whole benchmark suite.
#: Both engines are timed in the same run, so the ratio does not depend on
#: how fast the runner is.
ROUTING_SPEEDUP_FLOOR = 3.0

#: The optimizer acceptance criterion: the 2Q-block consolidation pass must
#: cut mean 2Q basis-layer depth across the benchmark suite by at least this
#: fraction.  Deterministic given the seeds, like the other routing metrics.
OPTIMIZER_DEPTH_FLOOR = 0.05

#: Default relative regression tolerance (15%).
DEFAULT_TOLERANCE = 0.15

#: Wider default for tail-latency metrics (short-run p95 is noisy).
TAIL_TOLERANCE = 0.50


@dataclass(frozen=True)
class Check:
    """One gated metric: where it lives and which direction is a regression."""

    label: str
    baseline: float
    current: float
    higher_is_better: bool
    tolerance: float

    @property
    def ratio(self) -> float:
        """current / baseline (inf when the baseline is zero)."""
        if self.baseline == 0:
            return float("inf") if self.current else 1.0
        return self.current / self.baseline

    @property
    def regression(self) -> float:
        """How far past the baseline in the *bad* direction (0 = at/better)."""
        if self.baseline == 0:
            return 0.0
        delta = (self.current - self.baseline) / abs(self.baseline)
        return max(0.0, -delta if self.higher_is_better else delta)

    @property
    def passed(self) -> bool:
        return self.regression <= self.tolerance

    def row(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        arrow = "higher-better" if self.higher_is_better else "lower-better"
        return (
            f"{verdict}  {self.label:<44} baseline {self.baseline:>12.4f} "
            f"current {self.current:>12.4f} ({arrow}, "
            f"regression {self.regression * 100:>5.1f}% / "
            f"tol {self.tolerance * 100:.0f}%)"
        )


def _dig(document: dict, path: str) -> float:
    value = document
    for part in path.split("."):
        value = value[part]
    return float(value)


def service_checks(baseline: dict, current: dict, tolerance: float) -> list[Check]:
    """The gated metrics of one ``bench_service.py`` document pair."""
    checks = []
    # Relative rows track the phases whose cost is real compilation work.
    # The cache-served warm phase is NOT gated against the baseline: its
    # per-request cost is microseconds of pure lookup, so run-to-run ratios
    # measure scheduler noise -- it is held to the absolute floors below
    # instead.
    for path, higher_is_better, tol in (
        ("cold.throughput_rps", True, tolerance),
        ("warm_nocache.throughput_rps", True, tolerance),
        ("cold.latency_ms.p50", False, tolerance),
        ("warm_nocache.latency_ms.p50", False, tolerance),
        ("warm_nocache.latency_ms.p95", False, max(tolerance, TAIL_TOLERANCE)),
    ):
        checks.append(
            Check(
                label=path,
                baseline=_dig(baseline, path),
                current=_dig(current, path),
                higher_is_better=higher_is_better,
                tolerance=tol,
            )
        )
    # The absolute floor is machine-independent: however fast the runner,
    # warm traffic must beat cold traffic by 5x or the caches are broken.
    checks.append(
        Check(
            label="speedup_warm_over_cold >= floor",
            baseline=SPEEDUP_FLOOR,
            current=_dig(current, "speedup_warm_over_cold"),
            higher_is_better=True,
            tolerance=0.0,
        )
    )
    # Program-cache gates read only the current run (the cache-on and
    # cache-off phases share one machine and process).  A current document
    # with no ``program_cache``/``build`` block came from a pre-cache bench
    # script and fails loudly rather than skipping the gates.
    program = current.get("program_cache", {})
    program_floor = float(
        os.environ.get("REPRO_PROGRAM_SPEEDUP_FLOOR", PROGRAM_SPEEDUP_FLOOR)
    )
    checks.append(
        Check(
            label="program_cache.speedup_vs_nocache >= floor",
            baseline=program_floor,
            current=float(program.get("speedup_vs_nocache", 0.0)),
            higher_is_better=True,
            tolerance=0.0,
        )
    )
    checks.append(
        Check(
            label=f"program_cache.warm_hit_rate >= {PROGRAM_HIT_RATE_FLOOR}",
            baseline=PROGRAM_HIT_RATE_FLOOR,
            current=float(program.get("warm_hit_rate", 0.0)),
            higher_is_better=True,
            tolerance=0.0,
        )
    )
    checks.append(
        Check(
            label="warm.throughput_rps >= 2x pre-cache committed warm",
            baseline=2.0 * PRE_CACHE_WARM_RPS,
            current=_dig(current, "warm.throughput_rps"),
            higher_is_better=True,
            tolerance=0.0,
        )
    )
    # Functional invariants phrased as booleans (baseline 1.0, zero
    # tolerance), mirroring the cluster gate's idiom.
    build = current.get("build", {})
    cpus = int(current.get("cpus", 1))
    default_build_floor = (
        BUILD_SPEEDUP_FLOOR_MULTICORE if cpus >= 4 else BUILD_SPEEDUP_FLOOR
    )
    build_floor = float(
        os.environ.get("REPRO_BUILD_SPEEDUP_FLOOR", default_build_floor)
    )
    checks.append(
        Check(
            label=f"build.speedup (batched over scalar) >= floor ({cpus} cpu(s))",
            baseline=build_floor,
            current=float(build.get("speedup", 0.0)),
            higher_is_better=True,
            tolerance=0.0,
        )
    )
    for label, holds in (
        (
            "program cache byte-identical to recompiling",
            bool(program.get("byte_identical", False)),
        ),
        (
            "batched build produced an identical target",
            bool(build.get("identical", False)),
        ),
    ):
        checks.append(
            Check(
                label=label,
                baseline=1.0,
                current=1.0 if holds else 0.0,
                higher_is_better=True,
                tolerance=0.0,
            )
        )
    return checks


def routing_checks(baseline: dict, current: dict, tolerance: float) -> list[Check]:
    """The gated metrics of one ``bench_routing.py`` document pair.

    Rows pair up by (circuit, mapping); a circuit present in the baseline
    but missing from the current run fails loudly (coverage must not shrink
    silently).
    """
    current_rows = {row["circuit"]: row["mappings"] for row in current["rows"]}
    checks = []
    for row in baseline["rows"]:
        circuit = row["circuit"]
        if circuit not in current_rows:
            checks.append(
                Check(
                    label=f"{circuit}: present in current run",
                    baseline=1.0,
                    current=0.0,
                    higher_is_better=True,
                    tolerance=0.0,
                )
            )
            continue
        for mapping, cell in row["mappings"].items():
            fresh = current_rows[circuit].get(mapping)
            if fresh is None:
                checks.append(
                    Check(
                        label=f"{circuit}/{mapping}: present in current run",
                        baseline=1.0,
                        current=0.0,
                        higher_is_better=True,
                        tolerance=0.0,
                    )
                )
                continue
            for metric, higher_is_better in (
                ("swap_count", False),
                ("swap_duration_ns", False),
                ("duration_ns", False),
                ("fidelity", True),
            ):
                checks.append(
                    Check(
                        label=f"{circuit}/{mapping}/{metric}",
                        baseline=float(cell[metric]),
                        current=float(fresh[metric]),
                        higher_is_better=higher_is_better,
                        tolerance=tolerance,
                    )
                )
    # The vectorized-over-reference speedup floor reads only the current run
    # (both engines were timed on the same machine); a current document with
    # no ``routing`` block came from a pre-speedup bench script and fails
    # loudly rather than skipping the gate.
    floor = float(os.environ.get("REPRO_ROUTING_SPEEDUP_FLOOR", ROUTING_SPEEDUP_FLOOR))
    speedup = current.get("routing", {}).get("speedup", 0.0)
    checks.append(
        Check(
            label="routing.speedup (vectorized over reference) >= floor",
            baseline=floor,
            current=float(speedup),
            higher_is_better=True,
            tolerance=0.0,
        )
    )
    # Optimizer gates read only the current run (the optimized and base
    # compiles of each cell share one process and one device); a current
    # document with no ``optimizer`` block came from a pre-optimizer bench
    # script and fails loudly rather than skipping the gates.
    optimizer = current.get("optimizer", {})
    depth_floor = float(
        os.environ.get("REPRO_OPTIMIZER_DEPTH_FLOOR", OPTIMIZER_DEPTH_FLOOR)
    )
    checks.append(
        Check(
            label="optimizer.mean_depth_reduction >= floor",
            baseline=depth_floor,
            current=float(optimizer.get("mean_depth_reduction", 0.0)),
            higher_is_better=True,
            tolerance=0.0,
        )
    )
    checks.append(
        Check(
            label="optimizer: every compile passed the equivalence harness",
            baseline=1.0,
            current=1.0 if optimizer.get("all_verified", False) else 0.0,
            higher_is_better=True,
            tolerance=0.0,
        )
    )
    # Per-cell never-worse invariants: consolidation must not deepen a
    # circuit or cost it fidelity, on any cell.
    deeper = []
    lower_fidelity = []
    for row in current["rows"]:
        for mapping, cell in row["mappings"].items():
            opt = cell.get("optimizer")
            if opt is None:
                deeper.append(f"{row['circuit']}/{mapping} (no optimizer data)")
                continue
            if int(opt["two_qubit_layers"]) > int(opt["two_qubit_layers_base"]):
                deeper.append(f"{row['circuit']}/{mapping}")
            if float(opt["fidelity"]) < float(cell["fidelity"]) - 1e-12:
                lower_fidelity.append(f"{row['circuit']}/{mapping}")
    for label, offenders in (
        ("optimizer never deepens a cell", deeper),
        ("optimizer never loses fidelity on a cell", lower_fidelity),
    ):
        if offenders:
            print(f"      offending cells: {', '.join(offenders)}")
        checks.append(
            Check(
                label=label,
                baseline=1.0,
                current=0.0 if offenders else 1.0,
                higher_is_better=True,
                tolerance=0.0,
            )
        )
    return checks


def cluster_checks(baseline: dict, current: dict, tolerance: float) -> list[Check]:
    """The gated metrics of one ``bench_cluster.py`` document pair."""
    checks = []
    for path, higher_is_better, tol in (
        ("single_warm.throughput_rps", True, tolerance),
        ("cluster_warm.throughput_rps", True, tolerance),
        ("cluster_warm.latency_ms.p50", False, tolerance),
        ("cluster_warm.latency_ms.p95", False, max(tolerance, TAIL_TOLERANCE)),
        ("cluster_warm_disk.throughput_rps", True, tolerance),
    ):
        checks.append(
            Check(
                label=path,
                baseline=_dig(baseline, path),
                current=_dig(current, path),
                higher_is_better=higher_is_better,
                tolerance=tol,
            )
        )
    # The speedup floor is CPU-aware: shard processes only parallelize on
    # real cores.  The env override exists for unusual runners.
    cpus = int(current.get("cpus", 1))
    default_floor = CLUSTER_SPEEDUP_FLOOR if cpus >= 2 else CLUSTER_SINGLE_CPU_FLOOR
    floor = float(os.environ.get("REPRO_CLUSTER_SPEEDUP_FLOOR", default_floor))
    checks.append(
        Check(
            label=f"speedup_cluster_over_single >= floor ({cpus} cpu(s))",
            baseline=floor,
            current=_dig(current, "speedup_cluster_over_single"),
            higher_is_better=True,
            tolerance=0.0,
        )
    )
    # Functional invariants of the *current* run, phrased as booleans with a
    # required baseline of 1.0 (a zero baseline would disable the regression
    # math), so they never drift with the committed file.
    for label, holds in (
        ("overload sheds observed", _dig(current, "overload.sheds") > 0),
        ("overload.errors == 0", _dig(current, "overload.errors") == 0),
        ("cluster_cold.errors == 0", _dig(current, "cluster_cold.errors") == 0),
        ("cluster_warm.errors == 0", _dig(current, "cluster_warm.errors") == 0),
        (
            "warm store reused (builds_after_restart == 0)",
            _dig(current, "cluster_warm_disk.builds_after_restart") == 0,
        ),
        (
            "calibrate changed the fingerprint",
            _dig(current, "coherence.fingerprint_changed") == 1,
        ),
        (
            "calibrate fan-out acked coherently",
            _dig(current, "coherence.coherent_ack") == 1,
        ),
        (
            "no stale fingerprint served after calibrate",
            _dig(current, "coherence.stale_served") == 0,
        ),
    ):
        checks.append(
            Check(
                label=label,
                baseline=1.0,
                current=1.0 if holds else 0.0,
                higher_is_better=True,
                tolerance=0.0,
            )
        )
    return checks


KINDS = {
    "service": service_checks,
    "routing": routing_checks,
    "cluster": cluster_checks,
}


def run_gate(baseline_path: Path, current_path: Path, tolerance: float) -> bool:
    """Print the check table for one baseline/current pair; True = all pass."""
    baseline = json.loads(baseline_path.read_text())
    current = json.loads(current_path.read_text())
    kind = baseline.get("benchmark")
    if kind != current.get("benchmark"):
        print(
            f"FAIL  benchmark kind mismatch: baseline {kind!r} vs "
            f"current {current.get('benchmark')!r}"
        )
        return False
    builder = KINDS.get(kind)
    if builder is None:
        print(f"FAIL  unknown benchmark kind {kind!r}; expected one of {sorted(KINDS)}")
        return False
    print(f"== {kind} gate: {current_path} vs baseline {baseline_path} ==")
    checks = builder(baseline, current, tolerance)
    failed = 0
    for check in checks:
        print(check.row())
        failed += 0 if check.passed else 1
    print(
        f"{len(checks) - failed}/{len(checks)} checks passed"
        + (f"; {failed} FAILED" if failed else "")
    )
    return failed == 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        action="append",
        required=True,
        help="committed baseline JSON (repeatable, pairs with --current)",
    )
    parser.add_argument(
        "--current",
        action="append",
        required=True,
        help="freshly produced JSON of the same benchmark (repeatable)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("PERF_GATE_TOLERANCE", DEFAULT_TOLERANCE)),
        help="relative regression tolerance (default 0.15; "
        "PERF_GATE_TOLERANCE env overrides)",
    )
    args = parser.parse_args(argv)
    if len(args.baseline) != len(args.current):
        parser.error("--baseline and --current must pair up")
    ok = True
    for baseline, current in zip(args.baseline, args.current):
        ok = run_gate(Path(baseline), Path(current), args.tolerance) and ok
        print()
    if not ok:
        print("perf gate FAILED -- see rows above; refresh baselines only for")
        print("intentional changes (see the module docstring / docs/service.md).")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
